#include <gtest/gtest.h>

#include "cycles/cycles.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"

namespace tensat {
namespace {

const T4CostModel& model() {
  static const T4CostModel m;
  return m;
}

Graph shared_matmuls(int n = 3) {
  Graph g;
  const Id x = g.input("x", {64, 256});
  for (int i = 0; i < n; ++i)
    g.add_root(g.matmul(x, g.weight("w" + std::to_string(i), {256, 256})));
  return g;
}

TEST(Optimizer, FindsMergedMatmuls) {
  TensatOptions opt;
  opt.k_max = 4;
  opt.node_limit = 4000;
  const TensatResult r = optimize(shared_matmuls(), default_rules(), model(), opt);
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.optimized_cost, r.original_cost - 1e-6);
  EXPECT_GT(r.optimized.op_histogram().count(Op::kSplit), 0u);
}

TEST(Optimizer, NeverWorseThanInput) {
  for (const ModelInfo& m : tiny_models()) {
    TensatOptions opt;
    opt.k_max = 3;
    opt.k_multi = 1;
    opt.node_limit = 3000;
    opt.explore_time_limit_s = 10.0;
    opt.ilp.time_limit_s = 5.0;
    const TensatResult r = optimize(m.graph, default_rules(), model(), opt);
    ASSERT_TRUE(r.ok) << m.name;
    EXPECT_LE(r.optimized_cost, r.original_cost + 1e-9) << m.name;
  }
}

TEST(Optimizer, SaturationOnInertGraph) {
  // A graph no rule can touch: a single convolution. Exploration saturates.
  Graph g;
  const Id x = g.input("x", {1, 3, 8, 8});
  const Id w = g.weight("w", {4, 3, 3, 3});
  g.add_root(g.conv(x, w, 1, 1, kPadSame));
  EGraph eg = seed_egraph(g);
  TensatOptions opt;
  opt.k_max = 10;
  const ExploreStats stats = run_exploration(eg, default_rules(), opt);
  EXPECT_EQ(stats.stop, StopReason::kSaturated);
  EXPECT_LE(stats.iterations, 3);
}

TEST(Optimizer, NodeLimitStopsGrowth) {
  TensatOptions opt;
  opt.k_max = 10;
  opt.k_multi = 10;
  opt.node_limit = 200;
  EGraph eg = seed_egraph(make_nasrnn(1, 4, 32));
  const ExploreStats stats = run_exploration(eg, default_rules(), opt);
  EXPECT_EQ(stats.stop, StopReason::kNodeLimit);
  // Limit is approximate (checked between applications) but can't blow past
  // by more than one application's worth of nodes.
  EXPECT_LT(stats.enodes_total, 400u);
}

TEST(Optimizer, EfficientFilterKeepsEGraphAcyclic) {
  TensatOptions opt;
  opt.k_max = 3;
  opt.k_multi = 2;
  opt.node_limit = 3000;
  opt.cycle_filter = CycleFilterMode::kEfficient;
  EGraph eg = seed_egraph(make_bert(1, 16, 32));
  run_exploration(eg, default_rules(), opt);
  EXPECT_TRUE(is_acyclic(eg));
}

TEST(Optimizer, VanillaFilterKeepsEGraphAcyclic) {
  TensatOptions opt;
  opt.k_max = 3;
  opt.k_multi = 2;
  opt.node_limit = 1500;
  opt.cycle_filter = CycleFilterMode::kVanilla;
  EGraph eg = seed_egraph(make_bert(1, 16, 32));
  run_exploration(eg, default_rules(), opt);
  EXPECT_TRUE(is_acyclic(eg));
}

TEST(Optimizer, NoFilterCanGoCyclic) {
  // Without filtering, the Fig. 3 situation arises naturally: matmuls where
  // one consumes the other plus the multi-pattern rule.
  Graph g;
  const Id x = g.input("x", {16, 16});
  const Id y = g.weight("y", {16, 16});
  const Id m1 = g.matmul(x, y);
  g.add_root(g.matmul(x, m1));
  TensatOptions opt;
  opt.k_max = 2;
  opt.k_multi = 2;
  opt.node_limit = 2000;
  opt.cycle_filter = CycleFilterMode::kNone;
  EGraph eg = seed_egraph(g);
  run_exploration(eg, default_rules(), opt);
  EXPECT_FALSE(is_acyclic(eg));
}

TEST(Optimizer, GreedyExtractorPath) {
  TensatOptions opt;
  opt.k_max = 3;
  opt.node_limit = 2000;
  opt.extractor = ExtractorKind::kGreedy;
  const TensatResult r = optimize(shared_matmuls(), default_rules(), model(), opt);
  ASSERT_TRUE(r.ok);
  EXPECT_LE(r.optimized_cost, r.original_cost + 1e-9);
}

TEST(Optimizer, KMultiZeroDisablesMultiPatternRules) {
  TensatOptions opt;
  opt.k_max = 4;
  opt.k_multi = 0;
  opt.node_limit = 4000;
  // Two matmuls sharing an input and nothing else: only multi-pattern rules
  // can merge them. With k_multi = 0 no split ops can appear.
  const TensatResult r = optimize(shared_matmuls(2), default_rules(), model(), opt);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.optimized.op_histogram().count(Op::kSplit), 0u);
}

TEST(Optimizer, MoreKMultiGrowsEGraph) {
  const Graph g = make_nasrnn(1, 8, 64);
  size_t prev_nodes = 0;
  for (int k = 0; k <= 2; ++k) {
    TensatOptions opt;
    opt.k_max = 3;
    opt.k_multi = k;
    opt.node_limit = 20000;
    EGraph eg = seed_egraph(g);
    const ExploreStats stats = run_exploration(eg, default_rules(), opt);
    EXPECT_GE(stats.enodes_total, prev_nodes);  // monotone growth in k_multi
    prev_nodes = stats.enodes_total;
  }
  EXPECT_GT(prev_nodes, 100u);
}

TEST(Optimizer, StatsAreCoherent) {
  TensatOptions opt;
  opt.k_max = 3;
  opt.node_limit = 3000;
  const TensatResult r = optimize(shared_matmuls(), default_rules(), model(), opt);
  EXPECT_GT(r.explore.enodes_total, 0u);
  EXPECT_GE(r.explore.enodes_total, r.explore.enodes);
  EXPECT_GT(r.explore.eclasses, 0u);
  EXPECT_GT(r.explore.matches_found, 0u);
  EXPECT_GE(r.explore.seconds, 0.0);
  EXPECT_GE(r.extract_seconds, 0.0);
}

}  // namespace
}  // namespace tensat
