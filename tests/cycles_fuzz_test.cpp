// Seeded random-churn harness for the incremental cycle analysis
// (cycles/incremental.h), pinning the two properties the pre-filter's
// soundness rests on:
//
//  * is_acyclic() holds after every sweep_cycles() round, whatever random
//    interleaving of adds, merges, and filterings preceded it;
//  * the incremental map never under-approximates a DescendantsMap built
//    fresh on the same clean e-graph (a missed reachability would let the
//    O(1) pre-filter wave a known-cyclic merge through) — and in fact the
//    two relations are asserted bit-equal, the stronger contract the
//    exploration differential relies on.
//
// A second harness drives full explorations with random rule subsets,
// incremental vs fresh, and demands bit-identical e-graphs.
//
// Everything is seeded (support/rng.h), so failures reproduce exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cycles/cycles.h"
#include "cycles/incremental.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "support/rng.h"
#include "tests/egraph_fingerprint.h"

namespace tensat {
namespace {

/// Canonical classes holding {8, 8} tensors — mutually mergeable (the
/// analysis join requires equal kind and shape).
std::vector<Id> tensor_classes(const EGraph& eg) {
  std::vector<Id> out;
  const std::vector<int32_t> shape{8, 8};
  for (Id cls : eg.canonical_classes())
    if (eg.data(cls).is_tensor() && eg.data(cls).shape == shape) out.push_back(cls);
  return out;
}

size_t reaches_mismatches(const ReachabilityMap& a, const ReachabilityMap& b,
                          const std::vector<Id>& classes) {
  size_t mismatches = 0;
  for (Id from : classes)
    for (Id to : classes)
      if (a.reaches(from, to) != b.reaches(from, to)) ++mismatches;
  return mismatches;
}

size_t under_approximations(const ReachabilityMap& inc, const ReachabilityMap& fresh,
                            const std::vector<Id>& classes) {
  size_t misses = 0;
  for (Id from : classes)
    for (Id to : classes)
      if (fresh.reaches(from, to) && !inc.reaches(from, to)) ++misses;
  return misses;
}

TEST(CyclesFuzz, RandomChurnKeepsSweepAcyclicAndMapExact) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    Graph g;
    std::vector<Id> inputs;
    for (int i = 0; i < 4; ++i)
      inputs.push_back(g.input("x" + std::to_string(i), {8, 8}));
    g.add_root(g.ewadd(g.relu(inputs[0]), g.tanh(inputs[1])));
    g.add_root(g.ewmul(inputs[2], inputs[3]));
    EGraph eg = seed_egraph(g);
    eg.rebuild();
    IncrementalCycleAnalysis inc(eg);

    for (int round = 0; round < 10; ++round) {
      std::vector<Id> classes = tensor_classes(eg);
      // Random adds: unary or binary nodes over random existing classes.
      const int adds = static_cast<int>(rng.below(8));
      for (int i = 0; i < adds; ++i) {
        const Id a = eg.find(classes[rng.below(classes.size())]);
        switch (rng.below(4)) {
          case 0: eg.add(TNode{Op::kRelu, 0, {}, {a}}); break;
          case 1: eg.add(TNode{Op::kTanh, 0, {}, {a}}); break;
          case 2: eg.add(TNode{Op::kSigmoid, 0, {}, {a}}); break;
          default: {
            const Id b = eg.find(classes[rng.below(classes.size())]);
            eg.add(TNode{Op::kEwadd, 0, {}, {a, b}});
            break;
          }
        }
      }
      // Random merges — including ancestor/descendant pairs, which close
      // cycles the sweep must then resolve.
      classes = tensor_classes(eg);
      const int merges = static_cast<int>(rng.below(4));
      for (int i = 0; i < merges; ++i)
        eg.merge(classes[rng.below(classes.size())],
                 classes[rng.below(classes.size())]);
      // Occasional random filtering, mimicking out-of-band cycle resolution.
      if (rng.chance(0.25)) {
        const Id cls = eg.find(classes[rng.below(classes.size())]);
        const size_t nodes = eg.eclass(cls).nodes.size();
        if (nodes > 0) eg.set_filtered(cls, rng.below(nodes));
      }

      eg.rebuild();
      inc.sweep_cycles();
      ASSERT_TRUE(is_acyclic(eg)) << "seed " << seed << " round " << round;
      inc.advance_epoch();

      const DescendantsMap fresh(eg);
      const std::vector<Id> canonical = eg.canonical_classes();
      ASSERT_EQ(under_approximations(inc, fresh, canonical), 0u)
          << "seed " << seed << " round " << round;
      ASSERT_EQ(reaches_mismatches(inc, fresh, canonical), 0u)
          << "seed " << seed << " round " << round;
    }
    // The churn is small relative to the graph, so the scoped repair — not
    // just the fallback — must have carried some epochs.
    EXPECT_GT(inc.stats().incremental_updates, 0u) << "seed " << seed;
  }
}

TEST(CyclesFuzz, RandomRuleSubsetsExploreIdenticallyInBothModes) {
  const std::vector<Rewrite>& all_rules = default_rules();
  std::vector<ModelInfo> models = tiny_models();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x5851f42d4c957f2dull);
    std::vector<Rewrite> rules;
    for (const Rewrite& r : all_rules)
      if (rng.chance(0.4)) rules.push_back(r);
    if (rules.empty()) rules.push_back(all_rules[rng.below(all_rules.size())]);
    const ModelInfo& m = models[rng.below(models.size())];

    TensatOptions opt;
    opt.k_max = 2 + static_cast<int>(rng.below(2));
    opt.k_multi = 1;
    opt.node_limit = 1500;

    opt.incremental_cycles = false;
    EGraph fresh = seed_egraph(m.graph);
    const ExploreStats fresh_stats = run_exploration(fresh, rules, opt);
    opt.incremental_cycles = true;
    EGraph inc = seed_egraph(m.graph);
    const ExploreStats inc_stats = run_exploration(inc, rules, opt);

    EXPECT_EQ(fresh_stats.iterations, inc_stats.iterations)
        << "seed " << seed << " model " << m.name;
    EXPECT_EQ(fresh_stats.applications, inc_stats.applications)
        << "seed " << seed << " model " << m.name;
    EXPECT_EQ(fresh.num_filtered(), inc.num_filtered())
        << "seed " << seed << " model " << m.name;
    EXPECT_EQ(fingerprint(fresh), fingerprint(inc))
        << "seed " << seed << " model " << m.name << " rules " << rules.size();
    EXPECT_TRUE(is_acyclic(inc)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tensat
