#include <gtest/gtest.h>

#include <cmath>

#include "lang/parse.h"
#include "models/models.h"
#include "support/check.h"
#include "tensor/interp.h"

namespace tensat {
namespace {

TEST(Interp, EvaluatesSimpleExpression) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.input("b", {2, 2});
  g.add_root(g.ewadd(a, b));
  Interpreter interp(1);
  Tensor ta({2, 2}, {1, 2, 3, 4});
  Tensor tb({2, 2}, {10, 20, 30, 40});
  interp.feed("a", ta);
  interp.feed("b", tb);
  const auto out = interp.run_roots(g);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FLOAT_EQ(out[0].at2(1, 1), 44.0f);
}

TEST(Interp, SynthesizesUnfedInputsDeterministically) {
  Graph g;
  const Id a = g.input("a", {3, 3});
  g.add_root(g.relu(a));
  Interpreter i1(7), i2(7), i3(8);
  const Tensor o1 = i1.run_roots(g)[0];
  const Tensor o2 = i2.run_roots(g)[0];
  const Tensor o3 = i3.run_roots(g)[0];
  EXPECT_LT(Tensor::max_abs_diff(o1, o2), 1e-12);
  EXPECT_GT(Tensor::max_abs_diff(o1, o3), 1e-4);
}

TEST(Interp, SameIdentifierSameData) {
  // Two references to input "x" see the same tensor: x - x == 0 ... here
  // checked via ewadd(x, x) == 2x.
  Graph g;
  const Id x = g.input("x", {2, 2});
  g.add_root(g.ewadd(x, x));
  Interpreter interp(3);
  const Tensor out = interp.run_roots(g)[0];
  Graph g2;
  const Id x2 = g2.input("x", {2, 2});
  g2.add_root(x2);
  const Tensor raw = Interpreter(3).run_roots(g2)[0];
  for (int64_t i = 0; i < raw.volume(); ++i)
    EXPECT_FLOAT_EQ(out.data()[i], 2.0f * raw.data()[i]);
}

TEST(Interp, SplitUsesAnalysisBoundary) {
  Graph g;
  const Id a = g.input("a", {2, 3});
  const Id b = g.input("b", {2, 5});
  const Id sp = g.split(1, g.concat(1, {a, b}));
  g.add_root(g.split0(sp));
  g.add_root(g.split1(sp));
  Interpreter interp(5);
  const auto out = interp.run_roots(g);
  Graph ga;
  ga.add_root(ga.input("a", {2, 3}));
  Graph gb;
  gb.add_root(gb.input("b", {2, 5}));
  EXPECT_LT(Tensor::max_abs_diff(out[0], Interpreter(5).run_roots(ga)[0]), 1e-7);
  EXPECT_LT(Tensor::max_abs_diff(out[1], Interpreter(5).run_roots(gb)[0]), 1e-7);
}

TEST(Interp, MatmulChain) {
  Graph g;
  const Id x = g.input("x", {2, 3});
  const Id w1 = g.weight("w1", {3, 4});
  const Id w2 = g.weight("w2", {4, 2});
  g.add_root(g.matmul(g.matmul(x, w1), w2));
  const Tensor out = Interpreter(1).run_roots(g)[0];
  EXPECT_EQ(out.dims(), (std::vector<int32_t>{2, 2}));
}

TEST(Interp, FeedShapeMismatchThrows) {
  Graph g;
  g.add_root(g.input("a", {2, 2}));
  Interpreter interp;
  interp.feed("a", Tensor({3, 3}));
  EXPECT_THROW(interp.run_roots(g), Error);
}

TEST(Interp, MergeRejected) {
  Graph g;
  const Id w = g.weight("w", {4, 2, 3, 3});
  g.add_root(g.merge(w, 2));
  EXPECT_THROW(Interpreter().run(g), Error);
}

TEST(Interp, RunsEveryTinyModel) {
  for (const ModelInfo& m : tiny_models()) {
    if (m.name == "VGG-19") continue;  // large-ish; covered in models_test
    Interpreter interp(11);
    const auto values = interp.run(m.graph);
    EXPECT_GT(values.size(), 0u) << m.name;
    for (Id root : m.graph.roots()) {
      const Tensor* t = std::get_if<Tensor>(&values.at(root));
      ASSERT_NE(t, nullptr) << m.name;
      EXPECT_GT(t->volume(), 0) << m.name;
      for (float v : t->data()) EXPECT_TRUE(std::isfinite(v)) << m.name;
    }
  }
}

}  // namespace
}  // namespace tensat
