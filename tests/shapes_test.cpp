#include <gtest/gtest.h>

#include "lang/graph.h"
#include "lang/parse.h"
#include "lang/shapes.h"

namespace tensat {
namespace {

// Most cases go through Graph::try_add, which exercises infer() exactly the
// way the e-graph analysis does.

TEST(Shapes, MatmulBasic) {
  Graph g;
  const Id a = g.input("a", {4, 8});
  const Id b = g.weight("b", {8, 3});
  const Id m = g.matmul(a, b);
  EXPECT_EQ(g.info(m).shape, (std::vector<int32_t>{4, 3}));
  EXPECT_FALSE(g.info(m).weight_only);
}

TEST(Shapes, MatmulInnerMismatchFails) {
  Graph g;
  const Id a = g.input("a", {4, 8});
  const Id b = g.weight("b", {7, 3});
  EXPECT_FALSE(g.try_add({Op::kMatmul, 0, {}, {g.num(0), a, b}}).has_value());
}

TEST(Shapes, MatmulBatched) {
  Graph g;
  const Id a = g.input("a", {2, 4, 8});
  const Id b = g.input("b", {2, 8, 5});
  EXPECT_EQ(g.info(g.matmul(a, b)).shape, (std::vector<int32_t>{2, 4, 5}));
}

TEST(Shapes, MatmulBroadcastRhs) {
  Graph g;
  const Id a = g.input("a", {2, 4, 8});
  const Id w = g.weight("w", {8, 5});
  EXPECT_EQ(g.info(g.matmul(a, w)).shape, (std::vector<int32_t>{2, 4, 5}));
}

TEST(Shapes, MatmulBatchMismatchFails) {
  Graph g;
  const Id a = g.input("a", {2, 4, 8});
  const Id b = g.input("b", {3, 8, 5});
  EXPECT_FALSE(g.try_add({Op::kMatmul, 0, {}, {g.num(0), a, b}}).has_value());
}

TEST(Shapes, MatmulWeightOnlyPropagates) {
  Graph g;
  const Id a = g.weight("a", {4, 8});
  const Id b = g.weight("b", {8, 3});
  EXPECT_TRUE(g.info(g.matmul(a, b)).weight_only);
}

TEST(Shapes, ConvSamePadding) {
  Graph g;
  const Id x = g.input("x", {1, 8, 14, 14});
  const Id w = g.weight("w", {16, 8, 3, 3});
  const Id c = g.conv(x, w, 1, 1, kPadSame);
  EXPECT_EQ(g.info(c).shape, (std::vector<int32_t>{1, 16, 14, 14}));
}

TEST(Shapes, ConvValidPaddingAndStride) {
  Graph g;
  const Id x = g.input("x", {1, 8, 14, 14});
  const Id w = g.weight("w", {16, 8, 3, 3});
  const Id c = g.conv(x, w, 2, 2, kPadValid);
  EXPECT_EQ(g.info(c).shape, (std::vector<int32_t>{1, 16, 6, 6}));
}

TEST(Shapes, GroupedConv) {
  Graph g;
  const Id x = g.input("x", {1, 8, 7, 7});
  const Id w = g.weight("w", {16, 2, 3, 3});  // groups = 4
  const Id c = g.conv(x, w, 1, 1, kPadSame);
  EXPECT_EQ(g.info(c).shape, (std::vector<int32_t>{1, 16, 7, 7}));
}

TEST(Shapes, ConvBadGroupingFails) {
  Graph g;
  const Id x = g.input("x", {1, 8, 7, 7});
  const Id w = g.weight("w", {16, 3, 3, 3});  // 8 % 3 != 0
  EXPECT_FALSE(
      g.try_add({Op::kConv, 0, {}, {g.num(1), g.num(1), g.num(0), g.num(0), x, w}})
          .has_value());
}

TEST(Shapes, ConvCoutNotDivisibleByGroupsFails) {
  Graph g;
  const Id x = g.input("x", {1, 8, 7, 7});
  const Id w = g.weight("w", {10, 2, 3, 3});  // groups=4, 10 % 4 != 0
  EXPECT_FALSE(
      g.try_add({Op::kConv, 0, {}, {g.num(1), g.num(1), g.num(0), g.num(0), x, w}})
          .has_value());
}

TEST(Shapes, TransposePermutes) {
  Graph g;
  const Id x = g.input("x", {2, 3, 4});
  const Id t = g.transpose(x, {2, 0, 1});
  EXPECT_EQ(g.info(t).shape, (std::vector<int32_t>{4, 2, 3}));
}

TEST(Shapes, TransposeBadPermFails) {
  Graph g;
  const Id x = g.input("x", {2, 3});
  EXPECT_FALSE(
      g.try_add({Op::kTranspose, 0, {}, {x, g.str("0_0")}}).has_value());
  EXPECT_FALSE(
      g.try_add({Op::kTranspose, 0, {}, {x, g.str("0_1_2")}}).has_value());
}

TEST(Shapes, ConcatSums) {
  Graph g;
  const Id a = g.input("a", {1, 4, 7, 7});
  const Id b = g.input("b", {1, 6, 7, 7});
  const Id c = g.concat(1, {a, b});
  EXPECT_EQ(g.info(c).shape, (std::vector<int32_t>{1, 10, 7, 7}));
  ASSERT_EQ(g.info(c).hist.size(), 1u);
  EXPECT_EQ(g.info(c).hist[0].axis, 1);
  EXPECT_EQ(g.info(c).hist[0].pos, 4);
}

TEST(Shapes, ConcatMismatchFails) {
  Graph g;
  const Id a = g.input("a", {1, 4, 7, 7});
  const Id b = g.input("b", {1, 6, 5, 7});
  EXPECT_FALSE(g.try_add({Op::kConcat2, 0, {}, {g.num(1), a, b}}).has_value());
}

TEST(Shapes, TernaryConcatHasNoSplitBoundary) {
  Graph g;
  const Id a = g.input("a", {1, 4, 7, 7});
  const Id c = g.concat(1, {a, a, a});
  EXPECT_TRUE(g.info(c).hist.empty());
}

TEST(Shapes, SplitRoundTrip) {
  Graph g;
  const Id a = g.input("a", {2, 3});
  const Id b = g.input("b", {2, 5});
  const Id cat = g.concat(1, {a, b});
  const Id sp = g.split(1, cat);
  const ValueInfo& info = g.info(sp);
  EXPECT_EQ(info.kind, VKind::kTuple);
  EXPECT_EQ(info.shape, (std::vector<int32_t>{2, 3}));
  EXPECT_EQ(info.shape2, (std::vector<int32_t>{2, 5}));
  EXPECT_EQ(g.info(g.split0(sp)).shape, g.info(a).shape);
  EXPECT_EQ(g.info(g.split1(sp)).shape, g.info(b).shape);
}

TEST(Shapes, SplitWithoutConcatFails) {
  Graph g;
  const Id a = g.input("a", {2, 6});
  EXPECT_FALSE(g.try_add({Op::kSplit, 0, {}, {g.num(1), a}}).has_value());
}

TEST(Shapes, SplitWrongAxisFails) {
  Graph g;
  const Id a = g.input("a", {2, 3});
  const Id cat = g.concat(1, {a, a});
  EXPECT_FALSE(g.try_add({Op::kSplit, 0, {}, {g.num(0), cat}}).has_value());
}

TEST(Shapes, NestedConcatSplitUsesMostRecent) {
  Graph g;
  const Id a = g.input("a", {2, 3});
  const Id b = g.input("b", {2, 5});
  const Id inner = g.concat(1, {a, b});          // boundary at 3
  const Id c = g.input("c", {2, 2});
  const Id outer = g.concat(1, {inner, c});      // boundary at 8
  const Id sp = g.split(1, outer);
  EXPECT_EQ(g.info(sp).shape, (std::vector<int32_t>{2, 8}));
  EXPECT_EQ(g.info(sp).shape2, (std::vector<int32_t>{2, 2}));
  // The first half keeps the inner boundary and can be split again.
  const Id sp2 = g.split(1, g.split0(sp));
  EXPECT_EQ(g.info(sp2).shape, (std::vector<int32_t>{2, 3}));
}

TEST(Shapes, HistPropagatesThroughMatmulRhs) {
  // Paper Fig. 2: split 1 after matmul of a column-concat must know the
  // boundary.
  Graph g;
  const Id x = g.input("x", {4, 8});
  const Id b = g.weight("b", {8, 3});
  const Id c = g.weight("c", {8, 5});
  const Id m = g.matmul(x, g.concat(1, {b, c}));
  const Id sp = g.split(1, m);
  EXPECT_EQ(g.info(sp).shape, (std::vector<int32_t>{4, 3}));
  EXPECT_EQ(g.info(sp).shape2, (std::vector<int32_t>{4, 5}));
}

TEST(Shapes, HistPropagatesThroughMatmulLhsRows) {
  Graph g;
  const Id x = g.input("x", {4, 8});
  const Id y = g.input("y", {6, 8});
  const Id w = g.weight("w", {8, 3});
  const Id m = g.matmul(g.concat(0, {x, y}), w);
  const Id sp = g.split(0, m);
  EXPECT_EQ(g.info(sp).shape, (std::vector<int32_t>{4, 3}));
  EXPECT_EQ(g.info(sp).shape2, (std::vector<int32_t>{6, 3}));
}

TEST(Shapes, HistPropagatesThroughConvWeights) {
  // Paper Fig. 9: split 1 after a conv whose weights were concatenated on
  // the output-channel axis.
  Graph g;
  const Id x = g.input("x", {1, 8, 7, 7});
  const Id w1 = g.weight("w1", {4, 8, 3, 3});
  const Id w2 = g.weight("w2", {12, 8, 3, 3});
  const Id c = g.conv(x, g.concat(0, {w1, w2}), 1, 1, kPadSame);
  const Id sp = g.split(1, c);
  EXPECT_EQ(g.info(sp).shape, (std::vector<int32_t>{1, 4, 7, 7}));
  EXPECT_EQ(g.info(sp).shape2, (std::vector<int32_t>{1, 12, 7, 7}));
}

TEST(Shapes, HistSurvivesActivations) {
  Graph g;
  const Id a = g.input("a", {2, 3});
  const Id cat = g.concat(1, {a, a});
  const Id r = g.relu(cat);
  EXPECT_EQ(g.info(r).hist.size(), 1u);
}

TEST(Shapes, EnlargePads) {
  Graph g;
  const Id w = g.weight("w", {4, 8, 3, 3});
  const Id ref = g.weight("ref", {2, 2, 5, 5});
  const Id e = g.enlarge(w, ref);
  EXPECT_EQ(g.info(e).shape, (std::vector<int32_t>{4, 8, 5, 5}));
}

TEST(Shapes, EnlargeOddParityFails) {
  Graph g;
  const Id w = g.weight("w", {4, 8, 3, 3});
  const Id ref = g.weight("ref", {2, 2, 4, 4});
  EXPECT_FALSE(g.try_add({Op::kEnlarge, 0, {}, {w, ref}}).has_value());
}

TEST(Shapes, EnlargeShrinkFails) {
  Graph g;
  const Id w = g.weight("w", {4, 8, 5, 5});
  const Id ref = g.weight("ref", {2, 2, 3, 3});
  EXPECT_FALSE(g.try_add({Op::kEnlarge, 0, {}, {w, ref}}).has_value());
}

TEST(Shapes, ReshapeChecksVolume) {
  Graph g;
  const Id x = g.input("x", {2, 6});
  EXPECT_EQ(g.info(g.reshape(x, {3, 4})).shape, (std::vector<int32_t>{3, 4}));
  EXPECT_FALSE(g.try_add({Op::kReshape, 0, {}, {x, g.str("5_2")}}).has_value());
}

TEST(Shapes, MergeExpandsWeight) {
  Graph g;
  const Id w = g.weight("w", {8, 2, 3, 3});
  const Id m = g.merge(w, 2);
  EXPECT_EQ(g.info(m).shape, (std::vector<int32_t>{8, 4, 3, 3}));
  EXPECT_TRUE(g.info(m).weight_only);
}

TEST(Shapes, PoolShapes) {
  Graph g;
  const Id x = g.input("x", {1, 4, 8, 8});
  EXPECT_EQ(g.info(g.poolmax(x, 2, 2, 2, 2, kPadValid)).shape,
            (std::vector<int32_t>{1, 4, 4, 4}));
  EXPECT_EQ(g.info(g.poolavg(x, 3, 3, 1, 1, kPadSame)).shape,
            (std::vector<int32_t>{1, 4, 8, 8}));
}

TEST(Shapes, InvalidActivationModeFails) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  EXPECT_FALSE(g.try_add({Op::kMatmul, 0, {}, {g.num(9), a, a}}).has_value());
}

TEST(Shapes, WeightOnlyConcatIsPrecomputable) {
  Graph g;
  const Id w1 = g.weight("w1", {4, 4});
  const Id w2 = g.weight("w2", {4, 4});
  EXPECT_TRUE(g.info(g.concat(1, {w1, w2})).weight_only);
  const Id x = g.input("x", {4, 4});
  EXPECT_FALSE(g.info(g.concat(1, {w1, x})).weight_only);
}

}  // namespace
}  // namespace tensat
