#include <gtest/gtest.h>

#include "lang/graph.h"
#include "lang/op.h"
#include "lang/parse.h"
#include "support/check.h"

namespace tensat {
namespace {

TEST(Op, NameRoundTrip) {
  for (size_t i = 0; i < static_cast<size_t>(Op::kOpCount); ++i) {
    const Op op = static_cast<Op>(i);
    if (op_is_leaf(op)) continue;
    auto back = op_from_name(op_info(op).name);
    ASSERT_TRUE(back.has_value()) << op_info(op).name;
    EXPECT_EQ(*back, op);
  }
}

TEST(Op, UnknownNameRejected) { EXPECT_FALSE(op_from_name("frobnicate").has_value()); }

TEST(Op, ArityMatchesSignature) {
  EXPECT_EQ(op_arity(Op::kConv), 6);
  EXPECT_EQ(op_arity(Op::kMatmul), 3);
  EXPECT_EQ(op_arity(Op::kPoolmax), 7);
  EXPECT_EQ(op_arity(Op::kNum), 0);
  EXPECT_EQ(op_arity(Op::kConcat4), 5);
}

TEST(Op, DimsRoundTrip) {
  const std::vector<int32_t> dims = {2, 3, 4};
  EXPECT_EQ(parse_dims(format_dims(dims)), dims);
  EXPECT_EQ(format_dims(dims), "2_3_4");
}

TEST(Op, TensorIdRoundTrip) {
  auto [name, dims] = parse_tensor_id("conv1_w@16_3_3_3");
  EXPECT_EQ(name, "conv1_w");
  EXPECT_EQ(dims, (std::vector<int32_t>{16, 3, 3, 3}));
}

TEST(Op, MalformedDimsThrow) {
  EXPECT_THROW(parse_dims("1_x_3"), Error);
  EXPECT_THROW(parse_tensor_id("no-at-sign"), Error);
}

TEST(Graph, HashConsing) {
  Graph g;
  const Id a = g.input("a", {2, 3});
  const Id b = g.input("a", {2, 3});
  EXPECT_EQ(a, b);
  const Id s1 = g.ewadd(a, a);
  const Id s2 = g.ewadd(a, b);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(g.reachable_size(), 0u);  // no roots yet
}

TEST(Graph, ShapeCheckOnAdd) {
  Graph g;
  const Id a = g.input("a", {2, 3});
  const Id b = g.input("b", {3, 2});
  EXPECT_THROW(g.ewadd(a, b), Error);  // shape mismatch
  EXPECT_NO_THROW(g.matmul(a, b));
}

TEST(Graph, VarRejectedInConcrete) {
  Graph g;
  EXPECT_THROW(g.var("x"), Error);
}

TEST(Graph, PatternAllowsVars) {
  Graph p(GraphKind::kPattern);
  const Id v = p.var("x");
  EXPECT_EQ(p.node(v).op, Op::kVar);
}

TEST(Graph, TopoOrderChildrenFirst) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.weight("b", {2, 2});
  const Id m = g.matmul(a, b);
  g.add_root(m);
  const auto order = g.topo_order();
  auto pos = [&](Id id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(a), pos(m));
  EXPECT_LT(pos(b), pos(m));
  EXPECT_EQ(order.back(), m);
}

TEST(Graph, SingleRootCombinesWithNoops) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.input("b", {2, 2});
  g.add_root(g.relu(a));
  g.add_root(g.relu(b));
  const Id root = g.single_root();
  EXPECT_EQ(g.node(root).op, Op::kNoop);
  EXPECT_EQ(g.roots().size(), 1u);
}

TEST(Graph, CanonicalKeyIsomorphismInvariant) {
  // Build the same dag in two different insertion orders.
  Graph g1;
  {
    const Id a = g1.input("a", {2, 2});
    const Id b = g1.weight("b", {2, 2});
    g1.add_root(g1.ewadd(g1.matmul(a, b), a));
  }
  Graph g2;
  {
    const Id b = g2.weight("b", {2, 2});
    const Id unused = g2.weight("unused", {4, 4});
    (void)unused;
    const Id a = g2.input("a", {2, 2});
    g2.add_root(g2.ewadd(g2.matmul(a, b), a));
  }
  EXPECT_EQ(g1.canonical_key(), g2.canonical_key());
}

TEST(Graph, CanonicalKeyDistinguishes) {
  Graph g1, g2;
  const Id a1 = g1.input("a", {2, 2});
  g1.add_root(g1.ewadd(a1, a1));
  const Id a2 = g2.input("a", {2, 2});
  g2.add_root(g2.ewmul(a2, a2));
  EXPECT_NE(g1.canonical_key(), g2.canonical_key());
}

TEST(Parse, SimpleExpr) {
  Graph g(GraphKind::kPattern);
  const Id root = parse_into(g, "(ewadd ?a ?b)");
  EXPECT_EQ(g.node(root).op, Op::kEwadd);
  EXPECT_EQ(g.node(g.node(root).children[0]).op, Op::kVar);
}

TEST(Parse, NestedWithLiterals) {
  Graph g(GraphKind::kPattern);
  const Id root = parse_into(g, "(matmul 1 ?a (transpose ?b 1_0))");
  const TNode& n = g.node(root);
  EXPECT_EQ(n.op, Op::kMatmul);
  EXPECT_EQ(g.node(n.children[0]).op, Op::kNum);
  EXPECT_EQ(g.node(n.children[0]).num, 1);
  const TNode& t = g.node(n.children[2]);
  EXPECT_EQ(t.op, Op::kTranspose);
  EXPECT_EQ(g.node(t.children[1]).str.str(), "1_0");
}

TEST(Parse, ConcreteInput) {
  Graph g;
  const Id root = parse_into(g, "(relu (input x@2_3))");
  EXPECT_EQ(g.node(root).op, Op::kRelu);
  EXPECT_EQ(g.info(root).shape, (std::vector<int32_t>{2, 3}));
}

TEST(Parse, MultipleExprs) {
  Graph g(GraphKind::kPattern);
  const auto roots = parse_all_into(g, "(matmul ?act ?a ?b) (matmul ?act ?a ?c)");
  EXPECT_EQ(roots.size(), 2u);
}

TEST(Parse, ErrorsOnMalformedInput) {
  Graph g(GraphKind::kPattern);
  EXPECT_THROW(parse_into(g, "(ewadd ?a"), Error);        // missing paren
  EXPECT_THROW(parse_into(g, "(nosuchop ?a)"), Error);    // unknown head
  EXPECT_THROW(parse_into(g, "(ewadd ?a ?b) tail"), Error);  // trailing tokens
  EXPECT_THROW(parse_into(g, "(ewadd ?a ?b ?c)"), Error);    // arity
}

TEST(Parse, PrintParseRoundTrip) {
  Graph g(GraphKind::kPattern);
  const std::string text = "(split0 (split 1 (matmul 0 ?a (concat2 1 ?b ?c))))";
  const Id root = parse_into(g, text);
  EXPECT_EQ(g.to_sexpr(root), text);
}

TEST(Graph, OpHistogramCountsReachable) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  g.relu(a);  // unreachable from roots
  g.add_root(g.ewadd(a, a));
  const auto hist = g.op_histogram();
  EXPECT_EQ(hist.count(Op::kRelu), 0u);
  EXPECT_EQ(hist.at(Op::kEwadd), 1);
}

}  // namespace
}  // namespace tensat
