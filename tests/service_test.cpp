// Tests for the optimization service (src/service/) and the session-
// lifecycle fixes it depends on: canonical fingerprints, the LRU result
// cache, cache-hit bit-identity, session resume, the scheduler's global
// iteration clock, the cycle-journal attach guard, and a concurrent
// mixed-submission stress run (exercised under ASan and TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cycles/incremental.h"
#include "egraph/egraph.h"
#include "ematch/scheduler.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "serialize/serialize.h"
#include "service/cache.h"
#include "service/fingerprint.h"
#include "service/service.h"
#include "support/check.h"

namespace tensat {
namespace {

const T4CostModel& model() {
  static const T4CostModel m;
  return m;
}

/// Small, fast-to-optimize settings shared by the service tests.
service::ServiceOptions fast_options() {
  service::ServiceOptions opt;
  opt.tensat.k_max = 3;
  opt.tensat.k_multi = 1;
  opt.tensat.node_limit = 400;
  opt.tensat.explore_time_limit_s = 10.0;
  opt.tensat.ilp.time_limit_s = 5.0;
  opt.tensat.ilp.rel_gap = 0.0;  // exact parity: hits vs recompute
  return opt;
}

Graph shared_matmuls(int n = 3) {
  Graph g;
  const Id x = g.input("x", {64, 64});
  for (int i = 0; i < n; ++i)
    g.add_root(g.matmul(x, g.weight("w" + std::to_string(i), {64, 64})));
  return g;
}

// ---------------------------------------------------------------------------
// Fingerprint canonicalization

TEST(Fingerprint, InvariantUnderNodeRelabeling) {
  // The same DAG built in two different construction orders gets different
  // node ids; the canonical form must not see the difference.
  Graph a;
  {
    const Id x = a.input("x", {32, 32});
    const Id w = a.weight("w", {32, 32});
    a.add_root(a.relu(a.matmul(x, w)));
  }
  Graph b;
  {
    const Id w = b.weight("w", {32, 32});  // ids swapped vs `a`
    const Id x = b.input("x", {32, 32});
    b.add_root(b.relu(b.matmul(x, w)));
  }
  EXPECT_EQ(service::canonical_form(a), service::canonical_form(b));
  EXPECT_EQ(service::graph_fingerprint(a), service::graph_fingerprint(b));
}

TEST(Fingerprint, InvariantUnderRootOrder) {
  Graph a;
  {
    const Id x = a.input("x", {32, 32});
    a.add_root(a.relu(x));
    a.add_root(a.matmul(x, a.weight("w", {32, 32})));
  }
  Graph b;
  {
    const Id x = b.input("x", {32, 32});
    const Id mm = b.matmul(x, b.weight("w", {32, 32}));
    b.add_root(mm);  // roots listed in the opposite order
    b.add_root(b.relu(x));
  }
  EXPECT_EQ(service::canonical_form(a), service::canonical_form(b));
}

TEST(Fingerprint, DistinguishesDifferentGraphs) {
  Graph a = shared_matmuls(2);
  Graph b = shared_matmuls(3);
  EXPECT_NE(service::canonical_form(a), service::canonical_form(b));
  // Same ops, different wiring: x*(w1), x*(w2) vs x*(w1), w1-as-input reuse.
  Graph c;
  {
    const Id x = c.input("x", {32, 32});
    const Id w = c.weight("w", {32, 32});
    c.add_root(c.matmul(x, w));
    c.add_root(c.relu(x));
  }
  Graph d;
  {
    const Id x = d.input("x", {32, 32});
    const Id w = d.weight("w", {32, 32});
    d.add_root(d.matmul(x, w));
    d.add_root(d.relu(w));  // relu of the weight, not the input
  }
  EXPECT_NE(service::canonical_form(c), service::canonical_form(d));
}

TEST(Fingerprint, SurvivesSerializeRoundTrip) {
  const Graph g = make_bert(1, 4, 8);
  const Graph back = load_graph_from_string(save_graph_to_string(g));
  EXPECT_EQ(service::canonical_form(g), service::canonical_form(back));
}

// ---------------------------------------------------------------------------
// Result cache

TEST(ResultCache, LruEvictionOrder) {
  service::ResultCache cache(2);
  auto entry = [](double cost) {
    service::CachedResult r;
    r.optimized_cost = cost;
    return r;
  };
  cache.insert("a", entry(1));
  cache.insert("b", entry(2));
  ASSERT_TRUE(cache.lookup("a").has_value());  // promotes "a" over "b"
  cache.insert("c", entry(3));                 // evicts "b"
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCache, RefreshOverwritesAndPromotes) {
  service::ResultCache cache(2);
  service::CachedResult r;
  r.optimized_text = "v1";
  cache.insert("a", r);
  r.optimized_text = "v2";
  cache.insert("b", service::CachedResult{});
  cache.insert("a", r);  // refresh promotes "a"
  cache.insert("c", service::CachedResult{});
  auto hit = cache.lookup("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->optimized_text, "v2");
  EXPECT_FALSE(cache.lookup("b").has_value());  // "b" was LRU
}

// ---------------------------------------------------------------------------
// Service: cache behavior

TEST(Service, CacheHitReturnsBitIdenticalResult) {
  service::ServiceOptions opt = fast_options();
  opt.enable_sessions = false;
  opt.enable_warm_starts = false;  // cache-only regime: cold path is pure
  service::OptimizationService svc(default_rules(), model(), opt);
  const std::string text = save_graph_to_string(shared_matmuls());

  const service::ServiceResponse cold = svc.submit(text);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  const service::ServiceResponse hit = svc.submit(text);
  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.optimized_text, cold.optimized_text);  // exact bytes
  EXPECT_EQ(hit.optimized_cost, cold.optimized_cost);
  EXPECT_EQ(hit.fingerprint, cold.fingerprint);

  // A relabeled/reordered submission of the same graph is the same key.
  Graph relabeled = load_graph_from_string(text);
  const service::ServiceResponse hit2 =
      svc.submit(save_graph_to_string(relabeled));
  ASSERT_TRUE(hit2.ok);
  EXPECT_TRUE(hit2.cache_hit);
  EXPECT_EQ(hit2.optimized_text, cold.optimized_text);

  // And the hit matches an independent recomputation through optimize().
  TensatOptions direct = opt.tensat;
  const TensatResult fresh =
      optimize(load_graph_from_string(text), default_rules(), model(), direct);
  ASSERT_TRUE(fresh.ok);
  EXPECT_EQ(save_graph_to_string(fresh.optimized), hit.optimized_text);

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(Service, MalformedSubmissionIsRejectedNotFatal) {
  service::OptimizationService svc(default_rules(), model(), fast_options());
  const service::ServiceResponse r1 = svc.submit("not a graph at all");
  EXPECT_FALSE(r1.ok);
  EXPECT_FALSE(r1.error.empty());
  const service::ServiceResponse r2 =
      svc.submit("tensat-graph v1\n0 str x@32_32\n0 input 0\nroots 0\n");
  EXPECT_FALSE(r2.ok);  // duplicate id
  // The service keeps serving after rejects.
  const service::ServiceResponse ok = svc.submit(
      save_graph_to_string(shared_matmuls()));
  EXPECT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(svc.stats().errors, 2u);
}

TEST(Service, CacheDisabledNeverHits) {
  service::ServiceOptions opt = fast_options();
  opt.enable_cache = false;
  service::OptimizationService svc(default_rules(), model(), opt);
  const std::string text = save_graph_to_string(shared_matmuls(2));
  EXPECT_FALSE(svc.submit(text).cache_hit);
  EXPECT_FALSE(svc.submit(text).cache_hit);
  EXPECT_EQ(svc.stats().cache_hits, 0u);
  EXPECT_EQ(svc.cache_size(), 0u);
}

// ---------------------------------------------------------------------------
// Service: sessions

TEST(Service, SessionResumesAndStaysCostCertified) {
  service::ServiceOptions opt = fast_options();
  opt.enable_cache = false;  // force the session path on every submit
  service::OptimizationService svc(default_rules(), model(), opt);

  Graph base = shared_matmuls(3);
  const service::ServiceResponse first =
      svc.submit(save_graph_to_string(base), "client-a");
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.session_reused);
  EXPECT_LE(first.optimized_cost, first.original_cost + 1e-9);

  // Perturbed variant: one more shared matmul. The session e-graph already
  // holds the first variant's exploration.
  Graph variant = shared_matmuls(4);
  const service::ServiceResponse second =
      svc.submit(save_graph_to_string(variant), "client-a");
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.session_reused);
  EXPECT_LE(second.optimized_cost, second.original_cost + 1e-9);

  // Resubmitting the first variant resumes again and must still certify.
  // Note the certificate is against the request's INPUT, not against the
  // first run's result: continued exploration can merge classes into cycles
  // whose filtering (Algorithm 2 is conservative) removes nodes an earlier
  // extraction used — identically so with or without a session.
  const service::ServiceResponse third =
      svc.submit(save_graph_to_string(base), "client-a");
  ASSERT_TRUE(third.ok) << third.error;
  EXPECT_TRUE(third.session_reused);
  EXPECT_LE(third.optimized_cost, third.original_cost + 1e-9);
  EXPECT_EQ(third.original_cost, first.original_cost);

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.sessions_created, 1u);
  EXPECT_EQ(stats.sessions_reused, 2u);
  EXPECT_EQ(svc.live_sessions(), 1u);
}

TEST(Service, TinySessionCapRetiresAndRecovers) {
  service::ServiceOptions opt = fast_options();
  opt.enable_cache = false;
  opt.session_node_cap = 1;  // every explored e-graph exceeds this
  service::OptimizationService svc(default_rules(), model(), opt);
  const std::string text = save_graph_to_string(shared_matmuls(2));
  ASSERT_TRUE(svc.submit(text, "s").ok);
  const service::ServiceResponse second = svc.submit(text, "s");
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_FALSE(second.session_reused);  // retired, restarted fresh
  EXPECT_GE(svc.stats().sessions_retired, 1u);
  EXPECT_LE(second.optimized_cost, second.original_cost + 1e-9);
}

// ---------------------------------------------------------------------------
// Session-lifecycle regressions: the scheduler's iteration clock

TEST(SessionLifecycle, StaleBanWouldReappearOnLocalClock) {
  // The raw bug: ban deadlines are absolute iteration numbers. A scheduler
  // persisted across runs, replayed against a per-run counter restarting at
  // 0, re-imposes every expired ban.
  ematch::BackoffOptions opt;
  opt.match_limit = 1;
  opt.ban_length = 5;
  ematch::BackoffScheduler sched(1, opt);
  EXPECT_TRUE(sched.record_matches(0, 0, 10));  // blows the budget: ban
  EXPECT_TRUE(sched.is_banned(0, 3));
  EXPECT_FALSE(sched.is_banned(0, 6));  // ban expired on the global clock

  // Run 1 executed 8 iterations. Run 2 restarting its local clock at 0
  // would see the ban as active again (the bug)...
  EXPECT_TRUE(sched.is_banned(0, 0));
  // ...while the session's global clock (iteration_base = 8) does not.
  const size_t iteration_base = 8;
  EXPECT_FALSE(sched.is_banned(0, iteration_base + 0));
}

TEST(SessionLifecycle, IterationBaseAccumulatesAcrossRuns) {
  Graph g = shared_matmuls(2);
  const Id root = g.single_root();
  auto eg = std::make_unique<EGraph>();
  auto mapping = eg->add_graph(g);
  eg->set_root(mapping.at(root));

  TensatOptions opt;
  opt.k_max = 3;
  opt.node_limit = 400;
  ExplorationSession session;
  const ExploreStats first = run_exploration(*eg, default_rules(), opt, &session);
  EXPECT_EQ(session.iteration_base, static_cast<size_t>(first.iterations));
  ASSERT_NE(session.scheduler, nullptr);
  EXPECT_EQ(session.scheduler->num_rules(), default_rules().size());

  opt.node_limit = 400 + eg->num_enodes_total();
  const ExploreStats second = run_exploration(*eg, default_rules(), opt, &session);
  EXPECT_EQ(session.iteration_base,
            static_cast<size_t>(first.iterations + second.iterations));
  // The persisted cycle analysis stayed attached to this e-graph.
  if (session.cycles != nullptr) EXPECT_EQ(session.cycles->egraph(), eg.get());
}

TEST(SessionLifecycle, ResumedRuleSetMustMatch) {
  Graph g = shared_matmuls(2);
  const Id root = g.single_root();
  EGraph eg;
  auto mapping = eg.add_graph(g);
  eg.set_root(mapping.at(root));
  TensatOptions opt;
  opt.k_max = 1;
  opt.node_limit = 300;
  ExplorationSession session;
  run_exploration(eg, default_rules(), opt, &session);
  const std::vector<Rewrite> fewer(default_rules().begin(),
                                   default_rules().begin() + 3);
  EXPECT_THROW(run_exploration(eg, fewer, opt, &session), Error);
}

// ---------------------------------------------------------------------------
// Session-lifecycle regressions: the cycle-journal attach guard

TEST(SessionLifecycle, SecondJournalAttachThrows) {
  Graph g = shared_matmuls(2);
  const Id root = g.single_root();
  EGraph eg;
  auto mapping = eg.add_graph(g);
  eg.set_root(mapping.at(root));

  CycleJournal first;
  eg.set_cycle_journal(&first);
  CycleJournal second;
  // Silently displacing a live journal would leave its owner resuming from
  // a stale epoch; the e-graph now refuses.
  EXPECT_THROW(eg.set_cycle_journal(&second), Error);
  eg.set_cycle_journal(nullptr);  // detach is always allowed
  eg.set_cycle_journal(&second);  // and re-attach after detach is too
  eg.set_cycle_journal(nullptr);
}

TEST(SessionLifecycle, TwoIncrementalAnalysesOnOneEGraphThrow) {
  Graph g = shared_matmuls(2);
  const Id root = g.single_root();
  EGraph eg;
  auto mapping = eg.add_graph(g);
  eg.set_root(mapping.at(root));
  IncrementalCycleAnalysis inc(eg);
  EXPECT_THROW(IncrementalCycleAnalysis second(eg), Error);
  // The first analysis is still attached and functional.
  EXPECT_EQ(inc.egraph(), &eg);
}

// ---------------------------------------------------------------------------
// Concurrent mixed-submission stress (run under ASan and TSan in CI)

TEST(ServiceStress, ConcurrentMixedSubmissions) {
  service::ServiceOptions opt = fast_options();
  opt.tensat.k_max = 2;
  opt.tensat.node_limit = 250;
  service::OptimizationService svc(default_rules(), model(), opt);

  const std::vector<std::string> graphs = {
      save_graph_to_string(shared_matmuls(2)),
      save_graph_to_string(shared_matmuls(3)),
      save_graph_to_string(make_bert(1, 4, 8)),
  };
  // Pre-populate the cache cold and serially so every later hit has a
  // reference byte string to be compared against.
  std::vector<std::string> reference;
  for (const std::string& text : graphs) {
    const service::ServiceResponse r = svc.submit(text);
    ASSERT_TRUE(r.ok) << r.error;
    reference.push_back(r.optimized_text);
  }
  // Per-thread perturbed variants for the session legs: not in the result
  // cache (session results never populate it and these keys are unique), so
  // every session submission actually runs the session path.
  std::vector<std::string> session_texts;
  for (int t = 0; t < 4; ++t) {
    Graph g = shared_matmuls(2);
    g.add_root(g.relu(g.input("p" + std::to_string(t), {16, 16})));
    session_texts.push_back(save_graph_to_string(g));
  }

  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        const int pick = (t + i) % static_cast<int>(graphs.size());
        switch (i % 3) {
          case 0: {  // cache-eligible repeat: must match the reference bytes
            const service::ServiceResponse r = svc.submit(graphs[pick]);
            if (!r.ok) ++failures;
            if (r.ok && r.optimized_text != reference[pick]) ++mismatches;
            break;
          }
          case 1: {  // session request (same key per thread: serialized)
            const service::ServiceResponse r =
                svc.submit(session_texts[t], "thread-" + std::to_string(t));
            if (!r.ok) ++failures;
            break;
          }
          default: {  // malformed request: rejected, never fatal
            const service::ServiceResponse r = svc.submit("roots nonsense");
            if (r.ok) ++failures;
            break;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests,
            static_cast<size_t>(kThreads * kPerThread) + graphs.size());
  EXPECT_EQ(stats.errors, static_cast<size_t>(kThreads * (kPerThread / 3)));
  EXPECT_GT(stats.cache_hits, 0u);
}

}  // namespace
}  // namespace tensat
