#include <gtest/gtest.h>

#include "cost/cost.h"
#include "models/models.h"

namespace tensat {
namespace {

const T4CostModel& model() {
  static const T4CostModel m;
  return m;
}

double cost_of(const Graph& g, Id id) {
  std::vector<ValueInfo> inputs;
  for (Id c : g.node(id).children) inputs.push_back(g.info(c));
  return node_cost(model(), g.node(id), inputs, g.info(id));
}

TEST(Cost, ParameterAndViewNodesFree) {
  Graph g;
  const Id a = g.input("a", {2, 3});
  const Id b = g.input("b", {2, 5});
  const Id cat = g.concat(1, {a, b});
  const Id sp = g.split(1, cat);
  EXPECT_EQ(cost_of(g, a), 0.0);
  EXPECT_EQ(cost_of(g, g.num(3)), 0.0);
  EXPECT_EQ(cost_of(g, sp), 0.0);
  EXPECT_EQ(cost_of(g, g.split0(sp)), 0.0);
  EXPECT_GT(cost_of(g, cat), 0.0);  // concat of non-weights copies data
}

TEST(Cost, WeightOnlySubgraphFree) {
  // Concat of two weights is precomputed at inference time (paper Fig. 10).
  Graph g;
  const Id w1 = g.weight("w1", {4, 4});
  const Id w2 = g.weight("w2", {4, 4});
  EXPECT_EQ(cost_of(g, g.concat(1, {w1, w2})), 0.0);
  const Id x = g.input("x", {4, 4});
  EXPECT_GT(cost_of(g, g.concat(1, {w1, x})), 0.0);
}

TEST(Cost, LaunchOverheadMakesMergingProfitable) {
  // One 64x(512->1024) matmul must be cheaper than two 64x(512->512): this
  // is the economics behind the paper's merging rewrites.
  Graph g;
  const Id x = g.input("x", {64, 512});
  const Id w1 = g.weight("w1", {512, 512});
  const Id wbig = g.weight("wb", {512, 1024});
  const double two_small = 2.0 * cost_of(g, g.matmul(x, w1));
  const double one_big = cost_of(g, g.matmul(x, wbig));
  EXPECT_LT(one_big, two_small);
}

TEST(Cost, FusedActivationCheaperThanSeparate) {
  Graph g;
  const Id x = g.input("x", {64, 512});
  const Id w = g.weight("w", {512, 512});
  const Id mm = g.matmul(x, w);
  const double separate = cost_of(g, mm) + cost_of(g, g.relu(mm));
  const double fused = cost_of(g, g.matmul(x, w, kActRelu));
  EXPECT_LT(fused, separate);
}

TEST(Cost, BiggerTensorsCostMore) {
  Graph g;
  const Id small = g.input("s", {1, 16, 14, 14});
  const Id big = g.input("b", {1, 64, 28, 28});
  const Id ws = g.weight("ws", {16, 16, 3, 3});
  const Id wb = g.weight("wb", {64, 64, 3, 3});
  EXPECT_LT(cost_of(g, g.conv(small, ws, 1, 1)), cost_of(g, g.conv(big, wb, 1, 1)));
}

TEST(Cost, GraphCostSumsReachableOnly) {
  Graph g;
  const Id x = g.input("x", {32, 32});
  const Id w = g.weight("w", {32, 32});
  const Id m = g.matmul(x, w);
  g.relu(m);  // dangling, not a root
  g.add_root(m);
  const double base = graph_cost(g, model());
  EXPECT_NEAR(base, cost_of(g, m), 1e-9);
}

TEST(Cost, SharedSubgraphCountedOnce) {
  Graph g;
  const Id x = g.input("x", {32, 32});
  const Id w = g.weight("w", {32, 32});
  const Id m = g.matmul(x, w);
  g.add_root(g.ewadd(m, m));  // m used twice but one node
  Graph g2;
  const Id x2 = g2.input("x", {32, 32});
  const Id w2 = g2.weight("w", {32, 32});
  const Id m2 = g2.matmul(x2, w2);
  g2.add_root(m2);
  const double with_add = graph_cost(g, model());
  const double just_matmul = graph_cost(g2, model());
  // Difference is exactly one ewadd, not a second matmul.
  Graph g3;
  const Id a3 = g3.input("a", {32, 32});
  const Id add3 = g3.ewadd(a3, a3);
  g3.add_root(add3);
  EXPECT_NEAR(with_add - just_matmul, cost_of(g3, add3), 1e-9);
}

TEST(Cost, EnodeCostMatchesGraphCost) {
  Graph g;
  const Id x = g.input("x", {16, 16});
  const Id w = g.weight("w", {16, 16});
  const Id m = g.matmul(x, w);
  g.add_root(m);
  EGraph eg;
  auto mapping = eg.add_graph(g);
  const Id cls = eg.find(mapping.at(m));
  const EClassNode& node = eg.eclass(cls).nodes.front();
  EXPECT_NEAR(enode_cost(eg, cls, node.node, model()), cost_of(g, m), 1e-9);
}

TEST(Cost, MeasuredRuntimePenalizesMovement) {
  auto base = std::make_shared<T4CostModel>();
  const MeasuredRuntimeModel runtime(base, /*movement_penalty=*/0.5, /*jitter=*/0.0,
                                     /*seed=*/1);
  Graph g;
  const Id a = g.input("a", {64, 64});
  const Id b = g.input("b", {64, 64});
  const Id cat = g.concat(1, {a, b});
  std::vector<ValueInfo> inputs = {g.info(g.num(1)), g.info(a), g.info(b)};
  const double analytic = model().op_cost(g.node(cat), inputs, g.info(cat));
  const double measured = runtime.op_cost(g.node(cat), inputs, g.info(cat));
  EXPECT_GT(measured, analytic * 1.4);
}

TEST(Cost, ModelsHaveSaneCosts) {
  for (const ModelInfo& m : paper_models()) {
    const double c = graph_cost(m.graph, model());
    EXPECT_GT(c, 0.0) << m.name;
    EXPECT_LT(c, 1e9) << m.name;
  }
}

}  // namespace
}  // namespace tensat
