// Randomized e-graph invariants, checked against a brute-force congruence
// oracle: after arbitrary merge/rebuild interleavings,
//   * find() respects every asserted equality,
//   * congruence closure is complete (same op + equivalent children =>
//     same class) and sound w.r.t. the oracle's closure,
//   * hash-consing is canonical (re-adding any canonicalized node returns
//     its own class),
//   * node counts never grow from rebuild (dedup only shrinks).
#include <gtest/gtest.h>

#include <map>

#include "egraph/egraph.h"
#include "support/rng.h"

namespace tensat {
namespace {

/// Brute-force congruence closure over a fixed term universe.
struct Oracle {
  // Terms: leaf i in [0, kLeaves) or (op, child term) unary applications.
  // Represented as ids into `terms`.
  struct Term {
    int op;  // -1 = leaf, else unary op index
    int child;
  };
  std::vector<Term> terms;
  std::vector<int> cls;  // term -> class label

  int find(int t) const { return cls[t]; }

  void merge(int a, int b) {
    const int la = cls[a], lb = cls[b];
    if (la == lb) return;
    for (int& c : cls)
      if (c == lb) c = la;
    close();
  }

  void close() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < terms.size(); ++i) {
        for (size_t j = i + 1; j < terms.size(); ++j) {
          if (cls[i] == cls[j]) continue;
          if (terms[i].op < 0 || terms[j].op < 0) continue;
          if (terms[i].op == terms[j].op && cls[terms[i].child] == cls[terms[j].child]) {
            const int lb = cls[j], la = cls[i];
            for (int& c : cls)
              if (c == lb) c = la;
            changed = true;
          }
        }
      }
    }
  }
};

constexpr int kLeaves = 4;
constexpr int kOps = 3;  // relu, tanh, sigmoid (all shape-preserving, T -> T)

Op unary_op(int i) {
  static constexpr Op kUnary[] = {Op::kRelu, Op::kTanh, Op::kSigmoid};
  return kUnary[i];
}

class EGraphVsOracle : public ::testing::TestWithParam<int> {};

TEST_P(EGraphVsOracle, CongruenceClosureMatches) {
  Rng rng(777 + GetParam());

  EGraph eg;
  Oracle oracle;
  std::vector<Id> eg_ids;  // term -> e-class id (as returned at add time)

  // Leaves.
  Graph g;
  std::vector<Id> leaf_graph_ids;
  for (int i = 0; i < kLeaves; ++i) {
    const Id gid = g.input("leaf" + std::to_string(i), {2, 2});
    g.add_root(gid);
    leaf_graph_ids.push_back(gid);
  }
  auto mapping = eg.add_graph(g);
  for (int i = 0; i < kLeaves; ++i) {
    oracle.terms.push_back({-1, -1});
    oracle.cls.push_back(i);
    eg_ids.push_back(mapping.at(leaf_graph_ids[i]));
  }

  // Random term additions and merges, interleaved with rebuilds.
  for (int step = 0; step < 60; ++step) {
    const int action = static_cast<int>(rng.below(3));
    if (action == 0) {
      // Add op(t) for random existing term t.
      const int t = static_cast<int>(rng.below(oracle.terms.size()));
      const int op = static_cast<int>(rng.below(kOps));
      TNode node{unary_op(op), 0, {}, {eg.find(eg_ids[t])}};
      eg_ids.push_back(eg.add(std::move(node)));
      oracle.terms.push_back({op, t});
      // Class label: congruent existing term's label or fresh.
      int label = static_cast<int>(oracle.cls.size()) + 1000;
      for (size_t j = 0; j + 1 < oracle.terms.size(); ++j) {
        if (oracle.terms[j].op == op && oracle.cls[oracle.terms[j].child] == oracle.cls[t])
          label = oracle.cls[j];
      }
      oracle.cls.push_back(label);
      oracle.close();
    } else if (action == 1 && oracle.terms.size() >= 2) {
      const int a = static_cast<int>(rng.below(oracle.terms.size()));
      const int b = static_cast<int>(rng.below(oracle.terms.size()));
      eg.merge(eg_ids[a], eg_ids[b]);
      oracle.merge(a, b);
    } else {
      eg.rebuild();
    }
  }
  eg.rebuild();

  // Equivalence must agree exactly for every term pair.
  for (size_t i = 0; i < oracle.terms.size(); ++i) {
    for (size_t j = i + 1; j < oracle.terms.size(); ++j) {
      EXPECT_EQ(eg.find(eg_ids[i]) == eg.find(eg_ids[j]),
                oracle.find(static_cast<int>(i)) == oracle.find(static_cast<int>(j)))
          << "terms " << i << ", " << j << " (seed " << GetParam() << ")";
    }
  }

  // Hash-cons canonicality: re-adding every canonical node hits its class.
  for (Id cls : eg.canonical_classes()) {
    for (const EClassNode& e : eg.eclass(cls).nodes) {
      TNode copy = e.node;
      EXPECT_EQ(eg.find(eg.add(std::move(copy))), eg.find(cls));
    }
  }

  // Rebuild is idempotent.
  const uint64_t v = eg.version();
  eg.rebuild();
  EXPECT_EQ(eg.version(), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EGraphVsOracle, ::testing::Range(0, 30));

TEST(EGraphProperty, RebuildNeverGrowsNodeCount) {
  Rng rng(31);
  EGraph eg;
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.input("b", {2, 2});
  std::vector<Id> chain_a{a}, chain_b{b};
  for (int i = 0; i < 20; ++i) {
    chain_a.push_back(g.relu(chain_a.back()));
    chain_b.push_back(g.relu(chain_b.back()));
  }
  g.add_root(chain_a.back());
  g.add_root(chain_b.back());
  auto mapping = eg.add_graph(g);
  const size_t before = eg.num_enodes_total();
  eg.merge(mapping.at(a), mapping.at(b));
  eg.rebuild();
  EXPECT_LT(eg.num_enodes_total(), before);  // the chains collapse pairwise
  EXPECT_EQ(eg.num_classes(), 20u + 1u + 2u);  // one chain + leaf class + strs
}

}  // namespace
}  // namespace tensat
