#include <gtest/gtest.h>

#include "lang/parse.h"
#include "models/models.h"
#include "serialize/serialize.h"
#include "support/check.h"
#include "support/rng.h"
#include "tensor/interp.h"

namespace tensat {
namespace {

TEST(Serialize, RoundTripSimpleGraph) {
  Graph g;
  const Id x = g.input("x", {4, 8});
  const Id w = g.weight("w", {8, 4});
  g.add_root(g.relu(g.matmul(x, w)));
  const std::string text = save_graph_to_string(g);
  const Graph back = load_graph_from_string(text);
  EXPECT_EQ(back.canonical_key(), g.canonical_key());
}

TEST(Serialize, RoundTripPreservesSharing) {
  Graph g;
  const Id x = g.input("x", {4, 4});
  const Id m = g.matmul(x, x);
  g.add_root(g.ewadd(m, m));  // shared node
  const Graph back = load_graph_from_string(save_graph_to_string(g));
  EXPECT_EQ(back.reachable_size(), g.reachable_size());
  EXPECT_EQ(back.canonical_key(), g.canonical_key());
}

TEST(Serialize, RoundTripEveryTinyModel) {
  for (const ModelInfo& m : tiny_models()) {
    const std::string text = save_graph_to_string(m.graph);
    const Graph back = load_graph_from_string(text);
    EXPECT_EQ(back.canonical_key(), m.graph.canonical_key()) << m.name;
    // Shape analysis is recomputed on load and must agree at the roots.
    for (size_t i = 0; i < m.graph.roots().size(); ++i)
      EXPECT_EQ(back.info(back.roots()[i]).shape,
                m.graph.info(m.graph.roots()[i]).shape)
          << m.name;
  }
}

TEST(Serialize, LoadedGraphComputesSameFunction) {
  const Graph g = make_bert(1, 4, 8);
  const Graph back = load_graph_from_string(save_graph_to_string(g));
  const auto a = Interpreter(3).run_roots(g);
  const auto b = Interpreter(3).run_roots(back);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_LT(Tensor::max_abs_diff(a[i], b[i]), 1e-7);
}

TEST(Serialize, PatternRoundTrip) {
  Graph p(GraphKind::kPattern);
  const Id root = parse_into(p, "(split0 (split 1 (matmul ?act ?a (concat2 1 ?b ?c))))");
  p.set_roots({root});
  const Graph back =
      load_graph_from_string(save_graph_to_string(p), GraphKind::kPattern);
  EXPECT_EQ(back.to_sexpr(back.roots()[0]), p.to_sexpr(root));
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW(load_graph_from_string("not a header\n"), Error);
  EXPECT_THROW(load_graph_from_string("tensat-graph v1\nroots 0\n"), Error);
  EXPECT_THROW(load_graph_from_string("tensat-graph v1\n0 frobnicate\nroots 0\n"),
               Error);
  EXPECT_THROW(load_graph_from_string("tensat-graph v1\n0 num 3\n1 relu 7\nroots 1\n"),
               Error);  // dangling child id
  EXPECT_THROW(load_graph_from_string("tensat-graph v1\n0 num 3\n"), Error);  // no roots
  EXPECT_THROW(load_graph_from_string("tensat-graph v1\n0 num 3\n0 num 4\nroots 0\n"),
               Error);  // duplicate id
}

TEST(Serialize, RejectsShapeInvalidGraphs) {
  // ewadd of mismatched shapes: parses syntactically, fails shape inference.
  const std::string bad =
      "tensat-graph v1\n"
      "0 str a@2_3\n"
      "1 input 0\n"
      "2 str b@3_2\n"
      "3 input 2\n"
      "4 ewadd 1 3\n"
      "roots 4\n";
  EXPECT_THROW(load_graph_from_string(bad), Error);
}

TEST(Serialize, StableAcrossSaveLoadSave) {
  Rng rng(5);
  const Graph g = make_nasrnn(1, 2, 8);
  const std::string once = save_graph_to_string(g);
  const std::string twice = save_graph_to_string(load_graph_from_string(once));
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace tensat
