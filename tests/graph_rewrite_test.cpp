#include <gtest/gtest.h>

#include "cost/cost.h"
#include "rewrite/rules.h"
#include "taso/graph_rewrite.h"

namespace tensat {
namespace {

TEST(GraphMatch, FindsAllSites) {
  Graph g;
  const Id x = g.input("x", {4, 4});
  const Id w1 = g.weight("w1", {4, 4});
  const Id w2 = g.weight("w2", {4, 4});
  g.add_root(g.relu(g.matmul(x, w1)));
  g.add_root(g.relu(g.matmul(x, w2)));
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(relu (matmul 0 ?a ?b))");
  EXPECT_EQ(match_graph_pattern(g, pat, root).size(), 2u);
}

TEST(GraphMatch, VariableConsistencyOnConcrete) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.input("b", {2, 2});
  g.add_root(g.ewadd(a, a));
  g.add_root(g.ewadd(a, b));
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(ewadd ?x ?x)");
  const auto matches = match_graph_pattern(g, pat, root);
  ASSERT_EQ(matches.size(), 1u);
}

TEST(GraphMatch, MultiPatternTuplesShareVars) {
  Graph g;
  const Id x = g.input("x", {4, 4});
  const Id y = g.input("y", {4, 4});
  const Id w1 = g.weight("w1", {4, 4});
  const Id w2 = g.weight("w2", {4, 4});
  g.add_root(g.matmul(x, w1));
  g.add_root(g.matmul(x, w2));
  g.add_root(g.matmul(y, w1));
  const auto& rules = multi_pattern_rules();
  const auto it = std::find_if(rules.begin(), rules.end(), [](const Rewrite& r) {
    return r.name == "multi-matmul-share-lhs";
  });
  ASSERT_NE(it, rules.end());
  const auto tuples = find_rule_applications(g, *it);
  // Shared-lhs pairs among {(x,w1),(x,w2),(y,w1)}: only (x,w1)x(x,w2) in
  // both orders.
  EXPECT_EQ(tuples.size(), 2u);
}

TEST(GraphApply, RewriteReplacesUsesEverywhere) {
  // x + (a*2)/... simpler: rewrite relu(matmul0) -> matmul1 and check both
  // uses see the fused node.
  Graph g;
  const Id x = g.input("x", {4, 4});
  const Id w = g.weight("w", {4, 4});
  const Id r = g.relu(g.matmul(x, w));
  g.add_root(g.ewadd(r, x));
  g.add_root(g.ewmul(r, x));
  const Rewrite rule = make_rewrite("fuse", "(relu (matmul 0 ?a ?b))",
                                    "(matmul 1 ?a ?b)");
  const auto tuples = find_rule_applications(g, rule);
  ASSERT_EQ(tuples.size(), 1u);
  const auto out = apply_to_graph(g, rule, tuples[0]);
  ASSERT_TRUE(out.has_value());
  const auto hist = out->op_histogram();
  EXPECT_EQ(hist.count(Op::kRelu), 0u);
  EXPECT_EQ(hist.at(Op::kMatmul), 1);
  EXPECT_EQ(out->roots().size(), 2u);
}

TEST(GraphApply, ConditionBlocksGroupedConv) {
  // conv-concat-cout must not fire on grouped convolutions.
  Graph g;
  const Id x = g.input("x", {1, 8, 6, 6});
  const Id w1 = g.weight("w1", {4, 4, 3, 3});  // groups = 2
  const Id w2 = g.weight("w2", {4, 4, 3, 3});
  g.add_root(g.concat(1, {g.conv(x, w1, 1, 1, kPadSame), g.conv(x, w2, 1, 1, kPadSame)}));
  const auto& rules = default_rules();
  const auto it = std::find_if(rules.begin(), rules.end(), [](const Rewrite& r) {
    return r.name == "conv-concat-cout-fwd";
  });
  ASSERT_NE(it, rules.end());
  const auto tuples = find_rule_applications(g, *it);
  ASSERT_GE(tuples.size(), 1u);
  EXPECT_FALSE(apply_to_graph(g, *it, tuples[0]).has_value());
}

TEST(GraphApply, ShapeCheckBlocksBadInstantiation) {
  // matmul-concat-rows-3d on 2-D operands must fail the shape check.
  Graph g;
  const Id a = g.input("a", {4, 5});
  const Id b = g.input("b", {4, 5});
  const Id w = g.weight("w", {5, 3});
  g.add_root(g.concat(1, {g.matmul(a, w), g.matmul(b, w)}));
  const auto& rules = default_rules();
  const auto it = std::find_if(rules.begin(), rules.end(), [](const Rewrite& r) {
    return r.name == "matmul-concat-rows-3d-fwd";
  });
  ASSERT_NE(it, rules.end());
  for (const auto& tuple : find_rule_applications(g, *it))
    EXPECT_FALSE(apply_to_graph(g, *it, tuple).has_value());
}

TEST(GraphApply, MultiPatternCreatesSplit) {
  Graph g;
  const Id x = g.input("x", {8, 16});
  const Id w1 = g.weight("w1", {16, 16});
  const Id w2 = g.weight("w2", {16, 16});
  g.add_root(g.matmul(x, w1));
  g.add_root(g.matmul(x, w2));
  const auto& rules = multi_pattern_rules();
  const auto it = std::find_if(rules.begin(), rules.end(), [](const Rewrite& r) {
    return r.name == "multi-matmul-share-lhs";
  });
  const auto tuples = find_rule_applications(g, *it);
  ASSERT_GE(tuples.size(), 1u);
  const auto out = apply_to_graph(g, *it, tuples[0]);
  ASSERT_TRUE(out.has_value());
  const auto hist = out->op_histogram();
  EXPECT_EQ(hist.at(Op::kSplit), 1);
  EXPECT_EQ(hist.at(Op::kSplit0), 1);
  EXPECT_EQ(hist.at(Op::kSplit1), 1);
  EXPECT_EQ(hist.at(Op::kMatmul), 1);  // merged
  // Both roots preserved, shapes unchanged.
  ASSERT_EQ(out->roots().size(), 2u);
  EXPECT_EQ(out->info(out->roots()[0]).shape, g.info(g.roots()[0]).shape);
}

TEST(GraphApply, MergedGraphCheaper) {
  // End-to-end economics: the merged matmul graph costs less under the T4
  // model (this is what both TASO and TENSAT exploit).
  Graph g;
  const Id x = g.input("x", {64, 512});
  const Id w1 = g.weight("w1", {512, 512});
  const Id w2 = g.weight("w2", {512, 512});
  g.add_root(g.matmul(x, w1));
  g.add_root(g.matmul(x, w2));
  const auto& rules = multi_pattern_rules();
  const auto it = std::find_if(rules.begin(), rules.end(), [](const Rewrite& r) {
    return r.name == "multi-matmul-share-lhs";
  });
  const auto tuples = find_rule_applications(g, *it);
  ASSERT_GE(tuples.size(), 1u);
  const auto out = apply_to_graph(g, *it, tuples[0]);
  ASSERT_TRUE(out.has_value());
  const T4CostModel model;
  EXPECT_LT(graph_cost(*out, model), graph_cost(g, model));
}

}  // namespace
}  // namespace tensat
