// Property test: every rewrite rule in the default rule set preserves the
// semantics of every graph it applies to. We build one "playground" graph
// containing an instance of every motif the rules target (both directions),
// enumerate each rule's applications on it with the concrete-graph matcher,
// apply them, and compare all graph outputs against the reference
// interpreter. A rule that never fires on the playground fails its test —
// that keeps the playground and the rule set honest with each other.
#include <gtest/gtest.h>

#include <algorithm>

#include "rewrite/rules.h"
#include "taso/graph_rewrite.h"
#include "tensor/interp.h"

namespace tensat {
namespace {

Graph playground() {
  Graph g;
  auto root = [&](Id id) { g.add_root(id); };

  // ---- Elementwise algebra ----
  const Id t1 = g.input("t1", {2, 3});
  const Id t2 = g.input("t2", {2, 3});
  const Id t3 = g.input("t3", {2, 3});
  root(g.ewadd(g.ewadd(t1, t2), t3));
  root(g.ewadd(t1, g.ewadd(t2, t3)));
  root(g.ewmul(g.ewmul(t1, t2), t3));
  root(g.ewmul(t1, g.ewmul(t2, t3)));
  root(g.ewmul(g.ewadd(t1, t2), t3));
  root(g.ewadd(g.ewmul(t1, t3), g.ewmul(t2, t3)));
  root(g.relu(g.relu(t1)));

  // ---- Matmul algebra ----
  const Id ma = g.input("ma", {4, 5});
  const Id mb = g.weight("mb", {5, 6});
  const Id mc = g.weight("mc", {6, 3});
  root(g.matmul(ma, g.matmul(mb, mc)));
  root(g.matmul(g.matmul(ma, mb), mc));
  const Id mb2 = g.weight("mb2", {5, 6});
  root(g.matmul(ma, g.ewadd(mb, mb2)));
  root(g.ewadd(g.matmul(ma, mb), g.matmul(ma, mb2)));
  const Id ma2 = g.input("ma2", {4, 5});
  root(g.matmul(g.ewadd(ma, ma2), mb));
  root(g.ewadd(g.matmul(ma, mb), g.matmul(ma2, mb)));

  // ---- Activation fusion ----
  root(g.relu(g.matmul(ma, mb)));
  root(g.matmul(ma, mb, kActRelu));
  root(g.tanh(g.matmul(ma, mb)));
  root(g.matmul(ma, mb, kActTanh));
  root(g.sigmoid(g.matmul(ma, mb)));
  root(g.matmul(ma, mb, kActSigmoid));

  // ---- Transpose algebra ----
  root(g.transpose(g.transpose(ma, {1, 0}), {1, 0}));
  root(g.transpose(g.matmul(ma, mb), {1, 0}));
  root(g.matmul(g.transpose(mb, {1, 0}), g.transpose(ma, {1, 0})));
  root(g.transpose(g.ewadd(t1, t2), {1, 0}));
  root(g.ewadd(g.transpose(t1, {1, 0}), g.transpose(t2, {1, 0})));
  root(g.transpose(g.ewmul(t1, t2), {1, 0}));
  root(g.ewmul(g.transpose(t1, {1, 0}), g.transpose(t2, {1, 0})));
  root(g.relu(g.transpose(t1, {1, 0})));
  root(g.transpose(g.relu(t1), {1, 0}));

  // ---- Concat / split ----
  const Id s1 = g.input("s1", {2, 3});
  const Id s2 = g.input("s2", {2, 4});
  const Id sp = g.split(1, g.concat(1, {s1, s2}));
  root(g.split0(sp));
  root(g.split1(sp));
  root(g.concat(1, {g.split0(sp), g.split1(sp)}));
  root(g.concat(1, {g.relu(t1), g.relu(t2)}));
  root(g.relu(g.concat(1, {t1, t2})));
  root(g.concat(1, {g.tanh(t1), g.tanh(t2)}));
  root(g.tanh(g.concat(1, {t1, t2})));
  root(g.concat(1, {g.sigmoid(t1), g.sigmoid(t2)}));
  root(g.sigmoid(g.concat(1, {t1, t2})));
  const Id t4 = g.input("t4", {2, 3});
  root(g.concat(1, {g.ewadd(t1, t2), g.ewadd(t3, t4)}));
  root(g.ewadd(g.concat(1, {t1, t3}), g.concat(1, {t2, t4})));
  root(g.concat(1, {g.ewmul(t1, t2), g.ewmul(t3, t4)}));
  root(g.ewmul(g.concat(1, {t1, t3}), g.concat(1, {t2, t4})));

  // ---- Matmul merging via concat (2-D) ----
  const Id x = g.input("x", {4, 5});
  const Id w1 = g.weight("w1", {5, 3});
  const Id w2 = g.weight("w2", {5, 2});
  root(g.matmul(x, w1));
  root(g.matmul(x, w2));
  root(g.concat(1, {g.matmul(x, w1), g.matmul(x, w2)}));
  root(g.matmul(x, g.concat(1, {w1, w2})));
  const Id r1 = g.input("r1", {3, 5});
  const Id r2 = g.input("r2", {2, 5});
  const Id wr = g.weight("wr", {5, 4});
  root(g.concat(0, {g.matmul(r1, wr), g.matmul(r2, wr)}));
  root(g.matmul(g.concat(0, {r1, r2}), wr));

  // ---- Matmul merging via concat (3-D / batched) ----
  const Id xb = g.input("xb", {2, 3, 4});
  const Id b1 = g.weight("b1", {2, 4, 2});
  const Id b2 = g.weight("b2", {2, 4, 3});
  root(g.concat(2, {g.matmul(xb, b1), g.matmul(xb, b2)}));
  root(g.matmul(xb, g.concat(2, {b1, b2})));
  const Id xb1 = g.input("xb1", {2, 3, 4});
  const Id xb2 = g.input("xb2", {2, 2, 4});
  const Id bw = g.weight("bw", {2, 4, 3});
  root(g.concat(1, {g.matmul(xb1, bw), g.matmul(xb2, bw)}));
  root(g.matmul(g.concat(1, {xb1, xb2}), bw));

  // ---- Convolution merging ----
  const Id x4 = g.input("x4", {1, 4, 6, 6});
  const Id cw1 = g.weight("cw1", {3, 4, 3, 3});
  const Id cw2 = g.weight("cw2", {5, 4, 3, 3});
  root(g.conv(x4, cw1, 1, 1, kPadSame));
  root(g.conv(x4, cw2, 1, 1, kPadSame));
  root(g.concat(1, {g.conv(x4, cw1, 1, 1, kPadSame), g.conv(x4, cw2, 1, 1, kPadSame)}));
  root(g.conv(x4, g.concat(0, {cw1, cw2}), 1, 1, kPadSame));
  root(g.relu(g.conv(x4, cw1, 1, 1, kPadSame)));
  root(g.conv(x4, cw1, 1, 1, kPadSame, kActRelu));
  const Id x4b = g.input("x4b", {1, 4, 6, 6});
  root(g.concat(0, {g.conv(x4, cw1, 1, 1, kPadSame), g.conv(x4b, cw1, 1, 1, kPadSame)}));
  root(g.conv(g.concat(0, {x4, x4b}), cw1, 1, 1, kPadSame));
  // Input-channel merging (paper Fig. 10).
  const Id xa = g.input("xa", {1, 2, 6, 6});
  const Id xc = g.input("xc", {1, 3, 6, 6});
  const Id wa = g.weight("wa", {4, 2, 3, 3});
  const Id wc = g.weight("wc", {4, 3, 3, 3});
  root(g.ewadd(g.conv(xa, wa, 1, 1, kPadSame), g.conv(xc, wc, 1, 1, kPadSame)));
  root(g.conv(g.concat(1, {xa, xc}), g.concat(1, {wa, wc}), 1, 1, kPadSame));
  // Kernel enlarging (1x1 and 3x3 convs of the same input, SAME padding).
  const Id ew1 = g.weight("ew1", {3, 4, 1, 1});
  root(g.concat(1, {g.conv(x4, ew1, 1, 1, kPadSame), g.conv(x4, cw2, 1, 1, kPadSame)}));

  // ---- Pooling ----
  root(g.concat(1, {g.poolavg(xa, 3, 3, 1, 1, kPadSame), g.poolavg(xc, 3, 3, 1, 1, kPadSame)}));
  root(g.poolavg(g.concat(1, {xa, xc}), 3, 3, 1, 1, kPadSame));
  root(g.concat(1, {g.poolmax(xa, 3, 3, 1, 1, kPadSame), g.poolmax(xc, 3, 3, 1, 1, kPadSame)}));
  root(g.poolmax(g.concat(1, {xa, xc}), 3, 3, 1, 1, kPadSame));

  return g;
}

class RuleSoundness : public ::testing::TestWithParam<size_t> {};

TEST_P(RuleSoundness, PreservesInterpreterSemantics) {
  const Rewrite& rule = default_rules()[GetParam()];
  if (!rule.numeric_checkable)
    GTEST_SKIP() << "structural-only rule (see DESIGN.md): " << rule.name;

  const Graph g = playground();
  const auto baseline = Interpreter(99).run_roots(g);

  auto applications = find_rule_applications(g, rule);
  size_t applied = 0;
  constexpr size_t kMaxChecked = 6;
  for (const auto& tuple : applications) {
    if (applied >= kMaxChecked) break;
    auto rewritten = apply_to_graph(g, rule, tuple);
    if (!rewritten.has_value()) continue;  // shape check / condition said no
    ++applied;
    const auto outputs = Interpreter(99).run_roots(*rewritten);
    ASSERT_EQ(outputs.size(), baseline.size()) << rule.name;
    for (size_t i = 0; i < outputs.size(); ++i) {
      ASSERT_EQ(outputs[i].dims(), baseline[i].dims()) << rule.name << " output " << i;
      EXPECT_LT(Tensor::max_abs_diff(outputs[i], baseline[i]), 5e-4)
          << rule.name << " changed output " << i;
    }
  }
  EXPECT_GT(applied, 0u) << "rule never applied on the playground: " << rule.name
                         << " — add its motif or fix the rule";
}

std::string rule_test_name(const ::testing::TestParamInfo<size_t>& info) {
  std::string name = default_rules()[info.param].name;
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllRules, RuleSoundness,
                         ::testing::Range<size_t>(0, default_rules().size()),
                         rule_test_name);

}  // namespace
}  // namespace tensat
