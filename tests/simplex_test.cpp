// Differential tests for the two simplex implementations behind solve_lp:
// the dense bounded-variable tableau (the baseline) and the sparse revised
// simplex (ilp/sparse.h, the default). Every named scenario — degenerate
// cycling, range rows with both bounds active, infeasibility, unboundedness
// — runs against both paths; a randomized sweep pins status and objective
// parity; the warm-start suite drives SparseLpSolver's basis reuse directly.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ilp/lp.h"
#include "ilp/sparse.h"
#include "support/rng.h"

namespace tensat {
namespace {

class SimplexPath : public ::testing::TestWithParam<bool> {
 protected:
  [[nodiscard]] LpOptions opts() const {
    LpOptions o;
    o.sparse = GetParam();
    return o;
  }
};

INSTANTIATE_TEST_SUITE_P(DenseAndSparse, SimplexPath, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("sparse")
                                             : std::string("dense");
                         });

TEST_P(SimplexPath, BealeCyclingExampleTerminates) {
  // Beale's classic cycling instance: Dantzig pricing with a naive ratio
  // test cycles forever at the degenerate origin vertex; the Bland fallback
  // must kick in and reach the optimum z* = -1/20 at x = (1/25, 0, 1, 0).
  LinearProgram lp;
  lp.add_var(0, kInf, -0.75);
  lp.add_var(0, kInf, 150.0);
  lp.add_var(0, kInf, -0.02);
  lp.add_var(0, kInf, 6.0);
  lp.add_row({{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, -kInf, 0.0);
  lp.add_row({{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, -kInf, 0.0);
  lp.add_row({{2, 1.0}}, -kInf, 1.0);
  const LpResult r = solve_lp(lp, opts());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
  EXPECT_NEAR(r.x[0], 0.04, 1e-9);
  EXPECT_NEAR(r.x[2], 1.0, 1e-9);
}

TEST_P(SimplexPath, HighlyDegenerateVertexTerminates) {
  // Many redundant rows through one vertex: every pivot at the vertex is
  // degenerate, exercising the Dantzig -> Bland switch.
  LinearProgram lp;
  lp.add_var(0, kInf, -1.0);
  lp.add_var(0, kInf, -1.0);
  lp.add_var(0, kInf, -1.0);
  for (int k = 0; k < 6; ++k)
    lp.add_row({{0, 1.0}, {1, 1.0}, {2, 1.0}}, -kInf, 3.0);
  lp.add_row({{0, 1.0}}, -kInf, 1.0);
  lp.add_row({{1, 1.0}}, -kInf, 1.0);
  lp.add_row({{2, 1.0}}, -kInf, 1.0);
  const LpResult r = solve_lp(lp, opts());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-9);
}

TEST_P(SimplexPath, RangeRowActiveAtEitherBound) {
  // One range row 1 <= x + y <= 2: minimizing x drives it to its lower
  // bound, maximizing x to its upper — the same slack variable lands on
  // each of its two finite bounds.
  LinearProgram lo_side;
  lo_side.add_var(0, kInf, 1.0);
  lo_side.add_var(0, 0.5, 0.0);
  lo_side.add_row({{0, 1.0}, {1, 1.0}}, 1.0, 2.0);
  const LpResult at_lo = solve_lp(lo_side, opts());
  ASSERT_EQ(at_lo.status, LpStatus::kOptimal);
  EXPECT_NEAR(at_lo.objective, 0.5, 1e-9);

  LinearProgram hi_side = lo_side;
  hi_side.objective[0] = -1.0;  // maximize x instead
  const LpResult at_hi = solve_lp(hi_side, opts());
  ASSERT_EQ(at_hi.status, LpStatus::kOptimal);
  EXPECT_NEAR(at_hi.objective, -2.0, 1e-9);
  EXPECT_NEAR(at_hi.x[0] + at_hi.x[1], 2.0, 1e-9);
}

TEST_P(SimplexPath, RangeRowsBothBoundsActiveSimultaneously) {
  // Two range rows pinned at opposite bounds in one unique optimum:
  // min x - 2y, 1 <= x + y <= 2 (upper active), 0 <= x - y <= 1 (lower
  // active) -> x = y = 1, objective -1.
  LinearProgram lp;
  lp.add_var(0, kInf, 1.0);
  lp.add_var(0, 1.0, -2.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 1.0, 2.0);
  lp.add_row({{0, 1.0}, {1, -1.0}}, 0.0, 1.0);
  const LpResult r = solve_lp(lp, opts());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST_P(SimplexPath, InfeasibleRowVsBounds) {
  // x + y >= 5 with x, y in [0, 1].
  LinearProgram lp;
  lp.add_var(0, 1, 1.0);
  lp.add_var(0, 1, 1.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 5.0, kInf);
  EXPECT_EQ(solve_lp(lp, opts()).status, LpStatus::kInfeasible);
}

TEST_P(SimplexPath, InfeasibleEqualityPair) {
  LinearProgram lp;
  lp.add_var(0, kInf, 0.0);
  lp.add_var(0, kInf, 0.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 1.0, 1.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 2.0, 2.0);
  EXPECT_EQ(solve_lp(lp, opts()).status, LpStatus::kInfeasible);
}

TEST_P(SimplexPath, DetectsUnbounded) {
  // min -x - y with only x + y >= 1 below: no finite optimum.
  LinearProgram lp;
  lp.add_var(0, kInf, -1.0);
  lp.add_var(0, kInf, -1.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 1.0, kInf);
  EXPECT_EQ(solve_lp(lp, opts()).status, LpStatus::kUnbounded);
}

TEST_P(SimplexPath, NegativeLowerBounds) {
  // General (non-[0,1]) bounds: min x + y, x in [-3, 5], y in [-2, 2],
  // x + y >= -4 -> the row binds at -4.
  LinearProgram lp;
  lp.add_var(-3, 5, 1.0);
  lp.add_var(-2, 2, 1.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, -4.0, kInf);
  const LpResult r = solve_lp(lp, opts());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-9);
}

// Randomized differential sweep: dense and sparse must agree on status and,
// when optimal, on the objective (vertex ties permit different x).
TEST(SimplexDifferential, RandomDenseSparseParity) {
  Rng rng(77);
  for (int trial = 0; trial < 400; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(8));
    const int m = 1 + static_cast<int>(rng.below(8));
    LinearProgram lp;
    for (int j = 0; j < n; ++j) {
      const double lo = rng.uniform(-2.0, 0.5);
      lp.add_var(lo, lo + rng.uniform(0.0, 3.0), rng.uniform(-2.0, 2.0));
    }
    for (int r = 0; r < m; ++r) {
      LinearProgram::Row row;
      const int terms = 1 + static_cast<int>(rng.below(4));
      for (int t = 0; t < terms; ++t)
        row.terms.emplace_back(static_cast<int>(rng.below(n)),
                               rng.uniform(-2.0, 2.0));
      switch (rng.below(4)) {
        case 0:  // <=
          row.lo = -kInf;
          row.hi = rng.uniform(-1.0, 3.0);
          break;
        case 1:  // >=
          row.lo = rng.uniform(-3.0, 1.0);
          row.hi = kInf;
          break;
        case 2:  // equality
          row.lo = row.hi = rng.uniform(-1.0, 1.0);
          break;
        default:  // range
          row.lo = rng.uniform(-2.0, 0.0);
          row.hi = row.lo + rng.uniform(0.0, 2.0);
          break;
      }
      lp.rows.push_back(row);
    }
    LpOptions dense_opt;
    dense_opt.sparse = false;
    LpOptions sparse_opt;
    sparse_opt.sparse = true;
    const LpResult dense = solve_lp(lp, dense_opt);
    const LpResult sparse = solve_lp(lp, sparse_opt);
    ASSERT_EQ(dense.status, sparse.status) << "trial " << trial;
    if (dense.status == LpStatus::kOptimal) {
      EXPECT_NEAR(dense.objective, sparse.objective,
                  1e-6 * (1.0 + std::abs(dense.objective)))
          << "trial " << trial;
      EXPECT_TRUE(lp.feasible(sparse.x, 1e-5)) << "trial " << trial;
    }
  }
}

// ---- SparseLpSolver warm starts (the B&B re-solve path) -------------------

LinearProgram extraction_shaped_lp() {
  // A small extraction-shaped MILP relaxation: 3 classes x 2 options with
  // cover rows, enough structure for a nontrivial basis.
  LinearProgram lp;
  for (int j = 0; j < 6; ++j) lp.add_var(0, 1, 1.0 + 0.5 * j);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 1.0, 1.0);  // root class picks one
  lp.add_row({{0, 1.0}, {2, -1.0}, {3, -1.0}}, -kInf, 0.0);
  lp.add_row({{1, 1.0}, {4, -1.0}, {5, -1.0}}, -kInf, 0.0);
  lp.add_row({{2, 1.0}, {3, 1.0}}, -kInf, 1.0);
  lp.add_row({{4, 1.0}, {5, 1.0}}, -kInf, 1.0);
  return lp;
}

TEST(SparseWarmStart, BoundFlipRestoredByDualSimplex) {
  const LinearProgram lp = extraction_shaped_lp();
  SparseLpSolver solver(lp);
  const LpOptions opt;
  SparseBasis basis;
  const LpResult root = solver.solve(opt, lp.lower, lp.upper, nullptr, &basis);
  ASSERT_EQ(root.status, LpStatus::kOptimal);
  ASSERT_FALSE(basis.empty());
  EXPECT_FALSE(root.warm);

  // Branch step: pin the chosen root option to zero and re-solve warm.
  std::vector<double> lo = lp.lower;
  std::vector<double> hi = lp.upper;
  hi[0] = 0.0;
  const LpResult warm = solver.solve(opt, lo, hi, &basis, nullptr);
  const LpResult cold = solver.solve(opt, lo, hi, nullptr, nullptr);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_TRUE(warm.warm);
  EXPECT_FALSE(cold.warm);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  // The whole point: restoring the parent basis beats solving from scratch.
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(SparseWarmStart, DetectsInfeasibleChildNode) {
  const LinearProgram lp = extraction_shaped_lp();
  SparseLpSolver solver(lp);
  const LpOptions opt;
  SparseBasis basis;
  ASSERT_EQ(solver.solve(opt, lp.lower, lp.upper, nullptr, &basis).status,
            LpStatus::kOptimal);
  // Pin both root options to zero: the root-cover equality is violated and
  // the dual simplex must certify infeasibility from the warm basis.
  std::vector<double> lo = lp.lower;
  std::vector<double> hi = lp.upper;
  hi[0] = 0.0;
  hi[1] = 0.0;
  EXPECT_EQ(solver.solve(opt, lo, hi, &basis, nullptr).status,
            LpStatus::kInfeasible);
}

TEST(SparseWarmStart, ChainedFlipsMatchColdSolves) {
  // Simulated dive: fix variables one at a time, chaining the basis, and
  // check every step against a cold solve of the same bounds.
  const LinearProgram lp = extraction_shaped_lp();
  SparseLpSolver solver(lp);
  const LpOptions opt;
  std::vector<double> lo = lp.lower;
  std::vector<double> hi = lp.upper;
  SparseBasis basis;
  ASSERT_EQ(solver.solve(opt, lo, hi, nullptr, &basis).status,
            LpStatus::kOptimal);
  for (int j : {2, 4, 0}) {
    lo[j] = hi[j] = (j == 0) ? 1.0 : 0.0;
    const LpResult warm = solver.solve(opt, lo, hi, &basis, &basis);
    const LpResult cold = solver.solve(opt, lo, hi, nullptr, nullptr);
    ASSERT_EQ(warm.status, cold.status) << "fix x" << j;
    if (cold.status != LpStatus::kOptimal) break;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-9) << "fix x" << j;
  }
}

}  // namespace
}  // namespace tensat
