// Tests for the tracing/telemetry layer (src/trace):
//  * unit behavior — spans, counters, instants, incr totals, install guards,
//    and the disabled path being a no-op;
//  * cross-thread merge — events recorded from a worker pool land in per-
//    thread lanes and merge into one deterministic summary;
//  * Chrome trace-event JSON — structurally valid (checked with a tiny
//    recursive-descent JSON parser) and carrying the expected phases;
//  * determinism — the trace digest, the per-rule telemetry, the growth
//    timeline, AND the e-graph fingerprint are bit-identical across
//    search/apply thread counts (1/2/8) on the deterministic paths, and
//    across extraction core_threads counts — the house determinism contract
//    extended to observability.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <thread>

#include "egraph_fingerprint.h"
#include "extract/engine/engine.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "support/parallel.h"
#include "trace/trace.h"

namespace tensat {
namespace {

// ---- Minimal JSON validity checker (structure only, no DOM) ---------------

struct JsonCursor {
  const std::string& s;
  size_t i{0};
  bool ok{true};

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  void value() {
    if (!ok) return;
    ws();
    if (i >= s.size()) {
      ok = false;
      return;
    }
    const char c = s[i];
    if (c == '{') {
      ++i;
      if (eat('}')) return;
      do {
        ws();
        string();
        if (!eat(':')) ok = false;
        value();
      } while (ok && eat(','));
      if (!eat('}')) ok = false;
    } else if (c == '[') {
      ++i;
      if (eat(']')) return;
      do value();
      while (ok && eat(','));
      if (!eat(']')) ok = false;
    } else if (c == '"') {
      string();
    } else if (c == 't') {
      ok = s.compare(i, 4, "true") == 0;
      i += 4;
    } else if (c == 'f') {
      ok = s.compare(i, 5, "false") == 0;
      i += 5;
    } else if (c == 'n') {
      ok = s.compare(i, 4, "null") == 0;
      i += 4;
    } else {
      number();
    }
  }
  void string() {
    ws();
    if (i >= s.size() || s[i] != '"') {
      ok = false;
      return;
    }
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    if (i >= s.size()) {
      ok = false;
      return;
    }
    ++i;  // closing quote
  }
  void number() {
    const size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                            s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                            s[i] == '-' || s[i] == '+'))
      ++i;
    if (i == start) ok = false;
  }
};

bool json_valid(const std::string& s) {
  JsonCursor c{s};
  c.value();
  c.ws();
  return c.ok && c.i == s.size();
}

// ---- Unit tests -----------------------------------------------------------

TEST(Tracer, DisabledHelpersAreNoOps) {
  ASSERT_EQ(trace::Tracer::current(), nullptr);
  // None of these may crash or record anywhere.
  trace::counter("x", 1);
  trace::instant("y");
  trace::incr("z", 5);
  { trace::ScopedSpan span("dead"); }
  EXPECT_EQ(trace::Tracer::current(), nullptr);
}

TEST(Tracer, SpansCountersInstantsTotals) {
  trace::Tracer tracer;
  tracer.install();
  EXPECT_EQ(trace::Tracer::current(), &tracer);
  {
    trace::ScopedSpan outer("phase");
    trace::ScopedSpan inner("phase/sub", 7);
    trace::counter("size", 10);
    trace::counter("size", 20);
    trace::instant("mark");
    trace::incr("work", 3);
    trace::incr("work", 4);
  }
  tracer.uninstall();
  EXPECT_EQ(trace::Tracer::current(), nullptr);

  const trace::Summary s = tracer.summary();
  ASSERT_EQ(s.spans.size(), 3u);  // phase, phase/sub, mark (instant)
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].name, "size");
  EXPECT_EQ(s.counters[0].values, (std::vector<int64_t>{10, 20}));
  ASSERT_EQ(s.totals.size(), 1u);
  EXPECT_EQ(s.totals[0].name, "work");
  EXPECT_EQ(s.totals[0].value, 7);
  for (const auto& sp : s.spans) {
    if (sp.name == "phase") {
      EXPECT_EQ(sp.count, 1u);
      EXPECT_GE(sp.total_us, 0.0);
    }
  }
}

TEST(Tracer, InstallIsExclusiveAndRestorable) {
  trace::Tracer a;
  a.install();
  trace::Tracer b;  // installing b while a is installed would TENSAT_CHECK
  a.uninstall();
  b.install();
  b.uninstall();
}

TEST(Tracer, CrossThreadMergeIsDeterministic) {
  // Record the same per-index work from pools of different sizes: summary
  // digests must match exactly (span counts, counter sequences from the
  // serial context, incr totals — no timestamps in the digest).
  const auto run = [](size_t threads) {
    trace::Tracer tracer;
    tracer.install();
    parallel_for(64, threads, [&](size_t i) {
      trace::ScopedSpan span("work", static_cast<int64_t>(i));
      trace::incr("items", 1);
      trace::incr("weight", static_cast<int64_t>(i));
    });
    trace::counter("after", 42);  // serial context
    tracer.uninstall();
    return tracer.summary().deterministic_digest();
  };
  const std::string d1 = run(1);
  EXPECT_EQ(d1, run(2));
  EXPECT_EQ(d1, run(8));
  EXPECT_NE(d1.find("span work x64"), std::string::npos);
  EXPECT_NE(d1.find("total items=64"), std::string::npos);
  EXPECT_NE(d1.find("total weight=2016"), std::string::npos);
}

TEST(Tracer, StatsSurfaceInSummaryButNotInDigest) {
  // kStat events carry scheduling-dependent telemetry — pool steal counts,
  // queue depths — whose values legitimately differ run to run and thread
  // count to thread count. They must surface in the summary and the Chrome
  // export, and must be invisible to the deterministic digest (which the
  // determinism suites compare across thread counts).
  const auto run = [](int64_t steals) {
    trace::Tracer tracer;
    tracer.install();
    trace::counter("size", 10);
    trace::stat("pool/steals", steals);
    trace::stat("pool/steals", steals + 1);
    tracer.uninstall();
    return tracer.summary();
  };
  const trace::Summary a = run(3);
  const trace::Summary b = run(900);  // wildly different stat values
  ASSERT_EQ(a.stats.size(), 1u);
  EXPECT_EQ(a.stats[0].name, "pool/steals");
  EXPECT_EQ(a.stats[0].values, (std::vector<int64_t>{3, 4}));
  EXPECT_EQ(a.deterministic_digest(), b.deterministic_digest());
  EXPECT_EQ(a.deterministic_digest().find("pool/steals"), std::string::npos);

  // The Chrome export does show them (as counter tracks).
  trace::Tracer tracer;
  tracer.install();
  trace::stat("pool/queue_depth", 7);
  tracer.uninstall();
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  EXPECT_TRUE(json_valid(out.str()));
  EXPECT_NE(out.str().find("pool/queue_depth"), std::string::npos);
}

TEST(Tracer, ChromeTraceJsonIsValid) {
  trace::Tracer tracer;
  tracer.install();
  parallel_for(16, 4, [&](size_t i) {
    trace::ScopedSpan span("escaped \"name\"\n", static_cast<int64_t>(i));
    trace::incr("total", 1);
  });
  trace::counter("gauge", -5);
  trace::instant("tick");
  tracer.uninstall();

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counters
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("thread_name"), std::string::npos);   // lane metadata
}

TEST(Tracer, ChromeTraceEscapesControlCharacters) {
  // Event names carrying raw control characters (< 0x20) must come out as
  // \u00XX escapes (or the \n / \t shorthands) — a raw control byte inside
  // a JSON string is invalid and chrome://tracing refuses the whole file.
  static const char kName[] = "bad\x01name\x1f mid\ttab\nnl \"q\" b\\s";
  trace::Tracer tracer;
  tracer.install();
  trace::instant(kName);
  trace::incr(kName, 1);  // totals render through the same escaper
  tracer.uninstall();

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_TRUE(json_valid(json)) << json;
  for (const char c : json)
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "raw control byte " << static_cast<int>(c) << " in output";
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\\"q\\\""), std::string::npos);
  EXPECT_NE(json.find("b\\\\s"), std::string::npos);
}

// ---- Pipeline determinism across thread counts ----------------------------

struct ExploreRun {
  std::string egraph_fp;
  std::string trace_digest;
  std::vector<RuleTelemetry> rules;
  std::vector<IterationTelemetry> growth;
};

ExploreRun explore_with_threads(size_t threads) {
  trace::Tracer tracer;
  tracer.install();
  EGraph eg = seed_egraph(make_bert(1, 8, 32));
  TensatOptions opt;
  opt.k_max = 4;
  opt.k_multi = 1;
  opt.node_limit = 3000;
  opt.search_threads = threads;
  opt.apply_threads = threads;
  const ExploreStats stats = run_exploration(eg, default_rules(), opt);
  tracer.uninstall();
  ExploreRun run;
  run.egraph_fp = fingerprint(eg);
  run.trace_digest = tracer.summary().deterministic_digest();
  run.rules = stats.rules;
  run.growth = stats.growth;
  return run;
}

/// Everything in RuleTelemetry except seconds (wall time legitimately
/// varies), serialized for whole-vector comparison.
std::string rules_key(const std::vector<RuleTelemetry>& rules) {
  std::ostringstream out;
  for (const RuleTelemetry& r : rules)
    out << r.name << ':' << r.matches << '/' << r.planned << '/' << r.committed
        << '/' << r.nodes_added << '/' << r.bans << '/' << r.unbans << '\n';
  return out.str();
}

std::string growth_key(const std::vector<IterationTelemetry>& growth) {
  std::ostringstream out;
  for (const IterationTelemetry& g : growth)
    out << g.eclasses << '/' << g.enodes << '/' << g.enodes_total << '/'
        << g.filtered << '/' << g.matches << '/' << g.applications << '\n';
  return out.str();
}

TEST(TraceDeterminism, TelemetryIdenticalAcrossThreadCounts) {
  const ExploreRun r1 = explore_with_threads(1);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    const ExploreRun rn = explore_with_threads(threads);
    EXPECT_EQ(r1.egraph_fp, rn.egraph_fp) << threads << " threads";
    EXPECT_EQ(r1.trace_digest, rn.trace_digest) << threads << " threads";
    EXPECT_EQ(rules_key(r1.rules), rules_key(rn.rules)) << threads << " threads";
    EXPECT_EQ(growth_key(r1.growth), growth_key(rn.growth))
        << threads << " threads";
  }
  // The digest must actually contain the instrumented phases.
  EXPECT_NE(r1.trace_digest.find("span explore/search"), std::string::npos);
  EXPECT_NE(r1.trace_digest.find("span explore/commit"), std::string::npos);
  EXPECT_NE(r1.trace_digest.find("counter egraph/hashcons"), std::string::npos);
}

TEST(TraceDeterminism, ExtractionDigestIdenticalAcrossCoreThreads) {
  // Small enough that every core's MILP solves to proven optimality: a solve
  // cut short by the wall-clock limit explores a time-dependent number of
  // B&B nodes, which is real nondeterminism the digest is supposed to expose.
  EGraph eg = seed_egraph(make_nasrnn(1, 2, 8));
  TensatOptions opt;
  opt.k_max = 2;
  opt.k_multi = 1;
  opt.node_limit = 600;
  run_exploration(eg, default_rules(), opt);

  const T4CostModel model;
  const auto extract_digest = [&](size_t core_threads) {
    trace::Tracer tracer;
    tracer.install();
    ExtractEngineOptions ext;
    ext.core_threads = core_threads;
    const EngineExtractionResult res = extract_engine(eg, model, ext);
    tracer.uninstall();
    EXPECT_TRUE(res.ok);
    EXPECT_FALSE(res.timed_out);
    return tracer.summary().deterministic_digest();
  };
  const std::string d1 = extract_digest(1);
  EXPECT_EQ(d1, extract_digest(2));
  EXPECT_EQ(d1, extract_digest(8));
  EXPECT_NE(d1.find("span extract/core"), std::string::npos);
  EXPECT_NE(d1.find("total milp/bb_nodes"), std::string::npos);
}

TEST(TraceDeterminism, LegacyDirectPathAlsoDeterministic) {
  // The legacy apply path shares the per-rule counters; its telemetry must
  // be self-consistent run to run as well (single-threaded by design).
  const auto run_legacy = [] {
    EGraph eg = seed_egraph(make_bert(1, 8, 32));
    TensatOptions opt;
    opt.k_max = 3;
    opt.staged_apply = false;
    opt.node_limit = 2000;
    const ExploreStats stats = run_exploration(eg, default_rules(), opt);
    return rules_key(stats.rules) + growth_key(stats.growth);
  };
  EXPECT_EQ(run_legacy(), run_legacy());
}

TEST(RuleTelemetry, CountsAreInternallyConsistent) {
  EGraph eg = seed_egraph(make_bert(1, 8, 32));
  TensatOptions opt;
  opt.k_max = 3;
  opt.node_limit = 2000;
  const ExploreStats stats = run_exploration(eg, default_rules(), opt);
  ASSERT_EQ(stats.rules.size(), default_rules().size());
  size_t committed_total = 0;
  size_t bans_total = 0;
  for (const RuleTelemetry& r : stats.rules) {
    EXPECT_GE(r.matches, r.planned) << r.name;
    EXPECT_GE(r.planned, r.committed) << r.name;
    committed_total += r.committed;
    bans_total += r.bans;
  }
  EXPECT_EQ(committed_total, stats.applications);
  EXPECT_EQ(bans_total, stats.bans);
  EXPECT_EQ(stats.growth.size(), static_cast<size_t>(stats.iterations));
}

}  // namespace
}  // namespace tensat
