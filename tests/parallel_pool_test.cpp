// Concurrency battery for the persistent work-stealing pool behind
// parallel_for (support/pool.h). The contract under test:
//
//   * parallel_for(n, t, fn) returns normally => fn ran exactly once for
//     every index in [0, n); it throws => the first exception is rethrown
//     and the pool is fully usable afterwards. There is no third outcome —
//     the partial-completion hazard (returning normally with silently
//     skipped items) is what the pool's join point fixed.
//   * A job never runs more than `t` items concurrently (invitations cap
//     per-job concurrency), even while unrelated jobs share the pool.
//   * Nested and recursive submission from worker threads is deadlock-free.
//   * Oversubscription (participants far beyond the hardware concurrency,
//     n far beyond the worker count) works: this suite's 8-thread runs on a
//     1-core CI box are the determinism tests' bread and butter.
//
// Run under both ASan and TSan in CI; the TSan stress lane repeats it with
// `ctest --repeat until-fail:3` to surface scheduling-dependent flakes.
#include <atomic>
#include <cstdint>
#include <numeric>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/parallel.h"
#include "support/pool.h"

namespace tensat {
namespace {

TEST(ParallelPoolTest, ZeroItemsRunsNothing) {
  parallel_for(0, 8, [](size_t) { FAIL() << "no items to run"; });
}

TEST(ParallelPoolTest, OneItemRunsInline) {
  size_t runs = 0;
  parallel_for(1, 8, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1u);
}

TEST(ParallelPoolTest, EveryIndexRunsExactlyOnce) {
  for (const size_t threads : {2u, 3u, 8u}) {
    for (const size_t n : {2u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<uint32_t>> hits(n);
      parallel_for(n, threads,
                   [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1u) << "n=" << n << " threads=" << threads
                                      << " index=" << i;
      }
    }
  }
}

TEST(ParallelPoolTest, OversubscriptionFarBeyondHardware) {
  // n >> workers and participants >> hardware_concurrency: the pool grows
  // to the requested width (clamped to kMaxWorkers + 1) instead of
  // quietly degrading to the core count.
  constexpr size_t kN = 20000;
  std::vector<std::atomic<uint8_t>> hits(kN);
  parallel_for(kN, 8, [&](size_t i) { hits[i].fetch_add(1); });
  parallel_for(kN, WorkStealingPool::kMaxWorkers + 9,  // clamps, must not break
               [&](size_t i) { hits[i].fetch_add(1); });
  size_t total = 0;
  for (size_t i = 0; i < kN; ++i) total += hits[i].load();
  EXPECT_EQ(total, 2 * kN);
}

TEST(ParallelPoolTest, PerJobConcurrencyCappedByThreadCount) {
  constexpr size_t kParticipants = 3;
  std::atomic<int> cur{0};
  std::atomic<int> peak{0};
  parallel_for(256, kParticipants, [&](size_t) {
    const int c = cur.fetch_add(1, std::memory_order_acq_rel) + 1;
    int p = peak.load(std::memory_order_relaxed);
    while (c > p && !peak.compare_exchange_weak(p, c)) {
    }
    for (volatile int spin = 0; spin < 200; ++spin) {
    }
    cur.fetch_sub(1, std::memory_order_acq_rel);
  });
  EXPECT_LE(peak.load(), static_cast<int>(kParticipants));
  EXPECT_GE(peak.load(), 1);
}

TEST(ParallelPoolTest, NestedSubmissionFromWorkers) {
  std::atomic<uint64_t> total{0};
  parallel_for(8, 4, [&](size_t) {
    parallel_for(64, 4, [&](size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(total.load(), 8u * 64u);
}

namespace {
uint64_t recursive_count(size_t depth) {
  if (depth == 0) return 1;
  std::atomic<uint64_t> sum{0};
  parallel_for(2, 2, [&](size_t) {
    sum.fetch_add(recursive_count(depth - 1), std::memory_order_relaxed);
  });
  return sum.load();
}
}  // namespace

TEST(ParallelPoolTest, RecursiveForkJoin) {
  EXPECT_EQ(recursive_count(6), 64u);  // 2^6 leaves
}

TEST(ParallelPoolTest, FirstExceptionRethrownAndPoolUsableAfter) {
  for (int round = 0; round < 25; ++round) {
    try {
      parallel_for(128, 8, [&](size_t i) {
        if (i % 16 == 3) throw std::runtime_error("boom " + std::to_string(i));
      });
      FAIL() << "an exception must propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u);
    }
    // The pool must be fully usable immediately after a failed job.
    std::vector<std::atomic<uint8_t>> hits(64);
    parallel_for(64, 8, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < 64; ++i) ASSERT_EQ(hits[i].load(), 1u);
  }
}

TEST(ParallelPoolTest, ExceptionTypePreserved) {
  struct Custom {};
  EXPECT_THROW(parallel_for(32, 4, [](size_t i) {
    if (i == 7) throw Custom{};
  }),
               Custom);
}

// Regression for the partial-completion hazard: every call must end in one
// of exactly two states — returned normally with every index run once, or
// thrown. A normal return with unrun items (the old spawning
// implementation's failure path skipped unclaimed indices; a buggy join
// could also return while chunks are still in flight) must never happen,
// and the join must not return while any fn call is still executing.
TEST(ParallelPoolTest, AllItemsRanOrExceptionThrown) {
  std::mt19937 rng(20260808);
  for (int round = 0; round < 200; ++round) {
    const size_t n = 1 + rng() % 300;
    const size_t threads = 1 + rng() % 10;
    const size_t bomb = rng() % (2 * n);  // ~50% of rounds actually throw
    std::vector<std::atomic<uint8_t>> ran(n);
    std::atomic<int> in_flight{0};
    bool threw = false;
    try {
      parallel_for(n, threads, [&](size_t i) {
        in_flight.fetch_add(1, std::memory_order_acq_rel);
        if (i == bomb) {
          in_flight.fetch_sub(1, std::memory_order_acq_rel);
          throw std::runtime_error("bomb");
        }
        ran[i].fetch_add(1, std::memory_order_relaxed);
        in_flight.fetch_sub(1, std::memory_order_acq_rel);
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
    ASSERT_EQ(in_flight.load(), 0)
        << "join returned while an fn call was still executing";
    if (!threw) {
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(ran[i].load(), 1u)
            << "normal return with unrun/duplicated index " << i << " (n=" << n
            << ", threads=" << threads << ")";
      }
    }
  }
}

// Seeded fuzz: interleave the three workload shapes the pool serves in
// production — search-shaped (read shared state, write a per-index slot),
// plan-shaped (build per-index structures), extract-shaped (nested
// submission) — with occasional exceptions, and check per-index results
// against a serial replay every round.
TEST(ParallelPoolTest, SeededFuzzInterleavedWorkloads) {
  std::mt19937 rng(0xC0FFEE);
  const std::vector<int> shared = [] {
    std::vector<int> v(512);
    std::iota(v.begin(), v.end(), 1);
    return v;
  }();
  for (int round = 0; round < 120; ++round) {
    const size_t n = rng() % 200;
    const size_t threads = 1 + rng() % 9;
    const int shape = static_cast<int>(rng() % 3);
    const bool with_bomb = rng() % 5 == 0;
    const size_t bomb = n == 0 ? 0 : rng() % n;

    auto item_value = [&](size_t i) -> int64_t {
      switch (shape) {
        case 0: {  // search-shaped: fold over shared read-only state
          int64_t acc = 0;
          for (size_t k = i % 7; k < shared.size(); k += 7) acc += shared[k];
          return acc + static_cast<int64_t>(i);
        }
        case 1: {  // plan-shaped: build and summarize a per-index structure
          std::vector<int64_t> staged;
          for (size_t k = 0; k <= i % 17; ++k)
            staged.push_back(static_cast<int64_t>(i * 31 + k));
          int64_t acc = 0;
          for (int64_t v : staged) acc = acc * 3 + v;
          return acc;
        }
        default: {  // extract-shaped: nested fork-join per item
          std::atomic<int64_t> acc{0};
          parallel_for(8, 2, [&](size_t k) {
            acc.fetch_add(static_cast<int64_t>((i + 1) * (k + 1)),
                          std::memory_order_relaxed);
          });
          return acc.load();
        }
      }
    };

    std::vector<int64_t> expect(n);
    for (size_t i = 0; i < n; ++i) expect[i] = item_value(i);

    std::vector<int64_t> got(n, -1);
    bool threw = false;
    try {
      parallel_for(n, threads, [&](size_t i) {
        if (with_bomb && i == bomb) throw std::logic_error("fuzz bomb");
        got[i] = item_value(i);
      });
    } catch (const std::logic_error&) {
      threw = true;
    }
    if (with_bomb && n > 0) {
      EXPECT_TRUE(threw) << "round " << round;
    } else {
      ASSERT_FALSE(threw) << "round " << round;
      ASSERT_EQ(got, expect) << "round " << round << " shape " << shape
                             << " threads " << threads;
    }
  }
}

TEST(ParallelPoolTest, TelemetryCountersAreMonotone) {
  auto& pool = WorkStealingPool::global();
  const auto before = pool.stats();
  std::atomic<uint64_t> sink{0};
  parallel_for(1000, 4, [&](size_t i) { sink.fetch_add(i, std::memory_order_relaxed); });
  const auto after = pool.stats();
  EXPECT_GT(after.jobs, before.jobs);
  EXPECT_GE(after.invitations, before.invitations + 3);
  EXPECT_GE(after.steals, before.steals);
  EXPECT_GE(pool.worker_count(), 3u);
  EXPECT_EQ(sink.load(), 1000u * 999u / 2);
}

// queue_depth() must see work queued in EVERY lane — the regression it
// pins: the old pool/queue_depth stat sampled only the calling worker's own
// deque, which is empty almost by definition at sampling time, so the gauge
// read 0 even with a backlog. Here the backlog sits in the injection queue
// (a non-worker submitter while all workers are pinned), exactly the lane
// the old stat could never see.
TEST(ParallelPoolTest, QueueDepthSeesAllLanes) {
  auto& pool = WorkStealingPool::global();
  parallel_for(64, 4, [](size_t) {});  // warm up: spawn workers
  const size_t workers = pool.worker_count();
  ASSERT_GE(workers, 3u);

  std::atomic<size_t> entered{0};
  std::atomic<bool> release{false};
  // Pin every worker (and the submitting thread) in a spinning job.
  std::thread blocker([&] {
    parallel_for(workers + 1, workers + 1, [&](size_t) {
      entered.fetch_add(1, std::memory_order_acq_rel);
      while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
    });
  });
  while (entered.load(std::memory_order_acquire) < workers + 1)
    std::this_thread::yield();

  // With all workers pinned, a non-worker submission lands its invitations
  // in the injection queue and self-completes; the stale invitations stay
  // queued behind the spinning job.
  std::atomic<uint64_t> sink{0};
  parallel_for(3, 3, [&](size_t i) { sink.fetch_add(i + 1); });
  EXPECT_EQ(sink.load(), 6u);
  EXPECT_GE(pool.queue_depth(), 2u);  // the two unclaimed invitations

  release.store(true, std::memory_order_release);
  blocker.join();
  // Workers drain the stale invitations (no-ops); the pool stays usable.
  parallel_for(64, 4, [](size_t) {});
}

// The spawning baseline (bench section 8's comparison point) must agree
// with the pool on the success path: same per-index coverage.
TEST(ParallelPoolTest, SpawningBaselineCoversAllIndices) {
  constexpr size_t kN = 512;
  std::vector<std::atomic<uint8_t>> pool_hits(kN);
  std::vector<std::atomic<uint8_t>> spawn_hits(kN);
  parallel_for(kN, 4, [&](size_t i) { pool_hits[i].fetch_add(1); });
  spawning_parallel_for(kN, 4, [&](size_t i) { spawn_hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(pool_hits[i].load(), 1u);
    ASSERT_EQ(spawn_hits[i].load(), 1u);
  }
}

}  // namespace
}  // namespace tensat
